// ShardedDB: hash-partitioned sub-LSMs behind the DB interface. Covers
// cross-shard routing (Put/Get/MultiGet/WriteBatch), merged iteration
// order, shard-count persistence and reopen mismatch rejection (both
// directions), stats aggregation, range-routed manual compaction, and the
// transitive-L0-expansion correctness property of CompactRange.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/units.h"
#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

class ShardedDbTest : public ::testing::Test {
 protected:
  Options BaseOptions(int num_shards) {
    Options options;
    options.vfs = &fs_;
    options.num_shards = num_shards;
    options.write_buffer_size = 64 * KiB;
    return options;
  }

  void Open(Options options) {
    db_.reset();
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  std::string Get(const std::string& key) {
    std::string value;
    const Status s = db_->Get({}, key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    EXPECT_TRUE(s.ok()) << s.ToString();
    return value;
  }

  vfs::MemVfs fs_;
  std::unique_ptr<DB> db_;
};

TEST_F(ShardedDbTest, PutGetAcrossShards) {
  Open(BaseOptions(4));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i),
                         "value" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(Get("key" + std::to_string(i)), "value" + std::to_string(i));
  }
  EXPECT_EQ(Get("missing"), "NOT_FOUND");
  // 200 hashed keys must actually land on more than one shard.
  std::vector<DbStats> per_shard;
  db_->GetShardStats(&per_shard);
  ASSERT_EQ(per_shard.size(), 4u);
  int shards_with_puts = 0;
  for (const DbStats& s : per_shard) {
    if (s.puts > 0) ++shards_with_puts;
  }
  EXPECT_GE(shards_with_puts, 2);
}

TEST_F(ShardedDbTest, MultiGetSpansShards) {
  Open(BaseOptions(4));
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db_->Put({}, "mg" + std::to_string(i),
                         "v" + std::to_string(i)).ok());
  }
  std::vector<std::string> key_storage;
  for (int i = 0; i < 64; ++i) key_storage.push_back("mg" + std::to_string(i));
  key_storage.push_back("absent");
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());

  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(db_->MultiGet({}, keys, &values, &statuses).ok());
  ASSERT_EQ(values.size(), keys.size());
  ASSERT_EQ(statuses.size(), keys.size());
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(statuses[i].ok()) << i;
    EXPECT_EQ(values[i], "v" + std::to_string(i)) << i;
  }
  EXPECT_TRUE(statuses[64].IsNotFound());
}

TEST_F(ShardedDbTest, IteratorMergesShardsInKeyOrder) {
  Open(BaseOptions(4));
  std::set<std::string> expected;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "it" + std::to_string(i);  // it0, it1, it10, ...
    ASSERT_TRUE(db_->Put({}, key, "v").ok());
    expected.insert(key);
  }
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  std::vector<std::string> seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen.push_back(it->key().ToString());
  }
  ASSERT_TRUE(it->status().ok()) << it->status().ToString();
  // std::set iterates in bytewise order — exactly the merged order.
  EXPECT_EQ(seen, std::vector<std::string>(expected.begin(), expected.end()));

  // Seek lands on the first key >= target across all shards.
  it->Seek("it50");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "it50");
}

TEST_F(ShardedDbTest, CrossShardWriteBatchAppliesEverywhere) {
  Open(BaseOptions(4));
  ASSERT_TRUE(db_->Put({}, "stale", "old").ok());
  WriteBatch batch;
  for (int i = 0; i < 32; ++i) {
    batch.Put("wb" + std::to_string(i), "wv" + std::to_string(i));
  }
  batch.Delete("stale");
  ASSERT_TRUE(db_->Write({}, &batch).ok());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(Get("wb" + std::to_string(i)), "wv" + std::to_string(i));
  }
  EXPECT_EQ(Get("stale"), "NOT_FOUND");
}

TEST_F(ShardedDbTest, DataSurvivesFlushAndReopen) {
  Open(BaseOptions(4));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put({}, "p" + std::to_string(i), "pv" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  for (int i = 100; i < 120; ++i) {  // these stay in the WALs
    ASSERT_TRUE(db_->Put({}, "p" + std::to_string(i), "pv" + std::to_string(i)).ok());
  }
  Open(BaseOptions(4));  // close + reopen
  for (int i = 0; i < 120; ++i) {
    EXPECT_EQ(Get("p" + std::to_string(i)), "pv" + std::to_string(i)) << i;
  }
}

TEST_F(ShardedDbTest, ReopenWithDifferentShardCountIsRejected) {
  Open(BaseOptions(4));
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  db_.reset();

  std::unique_ptr<DB> reopened;
  // Sharded -> different shard count.
  Status s = DB::Open(BaseOptions(2), "/db", &reopened);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // Sharded -> unsharded.
  s = DB::Open(BaseOptions(1), "/db", &reopened);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // The matching count still opens.
  s = DB::Open(BaseOptions(4), "/db", &reopened);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_F(ShardedDbTest, UnshardedStoreRejectsShardedReopen) {
  Open(BaseOptions(1));
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  db_.reset();

  std::unique_ptr<DB> reopened;
  const Status s = DB::Open(BaseOptions(4), "/db", &reopened);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(ShardedDbTest, DestroyRemovesMarkerAndShards) {
  Open(BaseOptions(4));
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  db_.reset();
  ASSERT_TRUE(DB::Destroy(BaseOptions(4), "/db").ok());
  EXPECT_FALSE(fs_.FileExists(ShardsMarkerFileName("/db")));
  // The path is reusable as an unsharded store afterwards.
  Open(BaseOptions(1));
  EXPECT_EQ(Get("k"), "NOT_FOUND");
}

TEST_F(ShardedDbTest, SnapshotSequenceReadsAreRejected) {
  Open(BaseOptions(4));
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ReadOptions options;
  options.snapshot_sequence = 1;
  std::string value;
  EXPECT_TRUE(db_->Get(options, "k", &value).IsInvalidArgument());
  std::vector<Slice> keys = {"k"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  EXPECT_TRUE(db_->MultiGet(options, keys, &values, &statuses)
                  .IsInvalidArgument());
  std::unique_ptr<Iterator> it(db_->NewIterator(options));
  EXPECT_TRUE(it->status().IsInvalidArgument());
}

TEST_F(ShardedDbTest, StatsAggregateAcrossShards) {
  Open(BaseOptions(4));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put({}, "s" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  std::string value;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Get({}, "s" + std::to_string(i), &value).ok());
  }

  const DbStats total = db_->GetStats();
  EXPECT_EQ(total.shards, 4u);
  EXPECT_EQ(total.puts, 100u);
  EXPECT_EQ(total.gets, 100u);
  EXPECT_GE(total.memtable_flushes, 1u);

  // The aggregate counters are exactly the per-shard sums.
  std::vector<DbStats> per_shard;
  db_->GetShardStats(&per_shard);
  ASSERT_EQ(per_shard.size(), 4u);
  uint64_t puts = 0;
  uint64_t flushes = 0;
  for (const DbStats& s : per_shard) {
    puts += s.puts;
    flushes += s.memtable_flushes;
  }
  EXPECT_EQ(total.puts, puts);
  EXPECT_EQ(total.memtable_flushes, flushes);
}

TEST_F(ShardedDbTest, CompactRangeCompactsEveryShard) {
  Options options = BaseOptions(4);
  options.disable_compaction = false;
  options.l0_compaction_trigger = 100;  // only manual compaction runs
  Open(options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put({}, "c" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_GE(db_->GetStats().compactions, 1u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(Get("c" + std::to_string(i)), "v" + std::to_string(i));
  }
}

// Manual compaction on a single LSM routes by key range: only files
// overlapping the request are compacted, and a non-overlapping range is a
// no-op.
TEST_F(ShardedDbTest, ManualCompactionRoutesByRange) {
  Options options = BaseOptions(1);
  options.disable_compaction = false;
  options.l0_compaction_trigger = 100;
  Open(options);

  // Two disjoint L0 files: [a0..a9] and [x0..x9].
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Put({}, "a" + std::to_string(i), "av").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Put({}, "x" + std::to_string(i), "xv").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  // A range between the two files touches nothing.
  const Slice m = "m";
  const Slice n = "n";
  ASSERT_TRUE(db_->CompactRange(&m, &n).ok());
  EXPECT_EQ(db_->GetStats().compactions, 0u);

  // A range over the x-file compacts exactly one file set.
  const Slice x_begin = "x";
  const Slice x_end = "xz";
  ASSERT_TRUE(db_->CompactRange(&x_begin, &x_end).ok());
  EXPECT_EQ(db_->GetStats().compactions, 1u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Get("a" + std::to_string(i)), "av");
    EXPECT_EQ(Get("x" + std::to_string(i)), "xv");
  }
}

// L0 files can overlap, and reads consult newest-first: a range compaction
// that picks a newer L0 file must also pull every older L0 file whose key
// span overlaps it (transitively), or the older file's stale versions
// would surface after the newer file moved to L1.
TEST_F(ShardedDbTest, ManualCompactionPullsOverlappingOlderL0Files) {
  Options options = BaseOptions(1);
  options.disable_compaction = false;
  options.l0_compaction_trigger = 100;
  Open(options);

  // Older L0 file spanning [b, z] with the stale version of "b".
  ASSERT_TRUE(db_->Put({}, "b", "old").ok());
  ASSERT_TRUE(db_->Put({}, "z", "zv").ok());
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  // Newer L0 file spanning [a, b] with the live version of "b".
  ASSERT_TRUE(db_->Put({}, "a", "av").ok());
  ASSERT_TRUE(db_->Put({}, "b", "new").ok());
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  // The request only names "a", which only the newer file contains; the
  // older file rides along via the transitive overlap on "b".
  const Slice a = "a";
  ASSERT_TRUE(db_->CompactRange(&a, &a).ok());
  EXPECT_EQ(Get("a"), "av");
  EXPECT_EQ(Get("b"), "new");
  EXPECT_EQ(Get("z"), "zv");
}

}  // namespace
}  // namespace lsmio::lsm
