// Failure injection: the engine must surface I/O errors as Status (never
// crash or corrupt silently), and a store that survived a fault must still
// serve everything durably written before it.
#include <gtest/gtest.h>

#include "common/units.h"
#include "lsm/db.h"
#include "testutil/faulty_vfs.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

class DbFaultTest : public ::testing::Test {
 protected:
  DbFaultTest() : faulty_(mem_) {}

  Options MakeOptions() {
    Options options;
    options.vfs = &faulty_;
    options.write_buffer_size = 64 * KiB;
    return options;
  }

  vfs::MemVfs mem_;
  testutil::FaultyVfs faulty_;
};

TEST_F(DbFaultTest, WalWriteFailureSurfacesToCaller) {
  Options options = MakeOptions();
  options.disable_wal = false;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  faulty_.Arm(1);  // next write-class op fails
  Status s = db->Put({}, "k", "v");
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_GE(faulty_.failures(), 1);
  faulty_.Disarm();
}

TEST_F(DbFaultTest, FlushFailureReportedByBarrier) {
  Options options = MakeOptions();
  options.disable_wal = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  ASSERT_TRUE(db->Put({}, "k", std::string(8 * KiB, 'v')).ok());
  faulty_.Arm(1);
  // The flush happens in the background; the synchronous barrier must
  // observe and report the failure.
  Status s = db->FlushMemTable(true);
  EXPECT_FALSE(s.ok());
  faulty_.Disarm();
}

TEST_F(DbFaultTest, DataBeforeFaultSurvivesReopen) {
  Options options = MakeOptions();
  options.disable_wal = true;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
    ASSERT_TRUE(db->Put({}, "durable", "yes").ok());
    ASSERT_TRUE(db->FlushMemTable(true).ok());  // durable before the fault

    ASSERT_TRUE(db->Put({}, "doomed", "maybe").ok());
    faulty_.Arm(1);
    db->FlushMemTable(true).IgnoreError();  // fails mid-flush, by design
    faulty_.Disarm();
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get({}, "durable", &value).ok());
  EXPECT_EQ(value, "yes");
}

TEST_F(DbFaultTest, LateFaultsDoNotAffectReads) {
  Options options = MakeOptions();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->Put({}, "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db->FlushMemTable(true).ok());

  faulty_.Arm(1);  // all further writes fail...
  std::string value;
  for (int i = 0; i < 20; ++i) {
    // ...but reads never touch the write path.
    EXPECT_TRUE(db->Get({}, "k" + std::to_string(i), &value).ok()) << i;
  }
  faulty_.Disarm();
}

TEST_F(DbFaultTest, OpenFailsCleanlyWhenManifestWriteFails) {
  faulty_.Arm(1);
  Options options = MakeOptions();
  std::unique_ptr<DB> db;
  const Status s = DB::Open(options, "/fresh", &db);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(db, nullptr);
  faulty_.Disarm();
}

}  // namespace
}  // namespace lsmio::lsm
