// Snapshot semantics under flush and compaction: a pinned snapshot must
// keep old versions readable even as the engine rewrites tables.
#include <gtest/gtest.h>

#include "common/units.h"
#include "lsm/db.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

class DbSnapshotTest : public ::testing::Test {
 protected:
  void Open(bool compaction) {
    Options options;
    options.vfs = &fs_;
    options.write_buffer_size = 32 * KiB;
    options.disable_compaction = !compaction;
    options.l0_compaction_trigger = 2;
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  std::string GetAt(const Slice& key, SequenceNumber seq) {
    ReadOptions options;
    options.snapshot_sequence = seq;
    std::string value;
    const Status s = db_->Get(options, key, &value);
    return s.IsNotFound() ? "NOT_FOUND" : (s.ok() ? value : "ERR");
  }

  vfs::MemVfs fs_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbSnapshotTest, SnapshotSurvivesFlush) {
  Open(/*compaction=*/false);
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());  // seq 1
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());  // seq 2
  ASSERT_TRUE(db_->FlushMemTable(true).ok());

  EXPECT_EQ(GetAt("k", 1), "v1");  // old version still on disk
  EXPECT_EQ(GetAt("k", 0), "v2");
  db_->ReleaseSnapshot(snap);
}

TEST_F(DbSnapshotTest, PinnedSnapshotSurvivesCompaction) {
  Open(/*compaction=*/true);
  ASSERT_TRUE(db_->Put({}, "k", "old").ok());  // seq 1
  const Snapshot* snap = db_->GetSnapshot();

  // Churn enough data through flushes + compactions to rewrite the world.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          db_->Put({}, "filler" + std::to_string(i), std::string(1024, 'f')).ok());
    }
    ASSERT_TRUE(db_->Put({}, "k", "new" + std::to_string(round)).ok());
    ASSERT_TRUE(db_->FlushMemTable(true).ok());
  }
  ASSERT_TRUE(db_->CompactRange().ok());

  // The pinned snapshot still sees the original version.
  EXPECT_EQ(GetAt("k", 1), "old");
  EXPECT_EQ(GetAt("k", 0), "new3");
  db_->ReleaseSnapshot(snap);

  // After release, a full compaction may drop the old version; the latest
  // must remain.
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_EQ(GetAt("k", 0), "new3");
}

TEST_F(DbSnapshotTest, IteratorAtSnapshotIsStable) {
  Open(/*compaction=*/false);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Put({}, "k" + std::to_string(i), "before").ok());
  }
  ReadOptions at_snapshot;
  at_snapshot.snapshot_sequence = 10;

  // Mutate heavily after the snapshot point.
  for (int i = 0; i < 10; i += 2) {
    ASSERT_TRUE(db_->Delete({}, "k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->Put({}, "zz-new", "after").ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator(at_snapshot));
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    EXPECT_EQ(iter->value().ToString(), "before");
    ++count;
  }
  EXPECT_EQ(count, 10);  // no deletions, no zz-new
}

TEST_F(DbSnapshotTest, MultipleSnapshotsIndependent) {
  Open(/*compaction=*/false);
  ASSERT_TRUE(db_->Put({}, "k", "a").ok());  // seq 1
  ASSERT_TRUE(db_->Put({}, "k", "b").ok());  // seq 2
  ASSERT_TRUE(db_->Put({}, "k", "c").ok());  // seq 3
  EXPECT_EQ(GetAt("k", 1), "a");
  EXPECT_EQ(GetAt("k", 2), "b");
  EXPECT_EQ(GetAt("k", 3), "c");
}

}  // namespace
}  // namespace lsmio::lsm
