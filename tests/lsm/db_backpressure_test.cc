// Write backpressure end-to-end: graduated slowdown delays vs hard stalls,
// the split stall-cause counters, non-multiplying stall accounting under
// writer herds, background I/O rate limiting, and per-operation latency
// histograms (single shard and sharded aggregation).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "lsm/db.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

class DbBackpressureTest : public ::testing::Test {
 protected:
  Options BaseOptions() {
    Options options;
    options.vfs = &fs_;
    options.write_buffer_size = 4 * KiB;
    options.background_threads = 2;
    return options;
  }

  void Open(Options options) {
    db_.reset();
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  vfs::MemVfs fs_;
  std::unique_ptr<DB> db_;
};

// Vfs decorator slowing appends to .sst files so flushes/compactions take
// long enough for writers to pile up against the memtable queue / L0.
class SlowTableVfs final : public vfs::Vfs {
 public:
  explicit SlowTableVfs(vfs::Vfs& base, int delay_us)
      : base_(base), delay_us_(delay_us) {}

  Status NewWritableFile(const std::string& path, const vfs::OpenOptions& opts,
                         std::unique_ptr<vfs::WritableFile>* file) override {
    std::unique_ptr<vfs::WritableFile> inner;
    LSMIO_RETURN_IF_ERROR(base_.NewWritableFile(path, opts, &inner));
    const bool slow = path.size() > 4 && path.rfind(".sst") == path.size() - 4;
    *file = std::make_unique<Writable>(std::move(inner), slow ? delay_us_ : 0);
    return Status::OK();
  }
  Status NewRandomAccessFile(const std::string& path, const vfs::OpenOptions& opts,
                             std::unique_ptr<vfs::RandomAccessFile>* file) override {
    return base_.NewRandomAccessFile(path, opts, file);
  }
  Status NewSequentialFile(const std::string& path, const vfs::OpenOptions& opts,
                           std::unique_ptr<vfs::SequentialFile>* file) override {
    return base_.NewSequentialFile(path, opts, file);
  }
  Status OpenFileHandle(const std::string& path, bool create,
                        const vfs::OpenOptions& opts,
                        std::unique_ptr<vfs::FileHandle>* file) override {
    return base_.OpenFileHandle(path, create, opts, file);
  }
  bool FileExists(const std::string& path) override { return base_.FileExists(path); }
  Status GetFileSize(const std::string& path, uint64_t* size) override {
    return base_.GetFileSize(path, size);
  }
  Status RemoveFile(const std::string& path) override { return base_.RemoveFile(path); }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_.RenameFile(from, to);
  }
  Status CreateDir(const std::string& path) override { return base_.CreateDir(path); }
  Status ListDir(const std::string& path, std::vector<std::string>* out) override {
    return base_.ListDir(path, out);
  }

 private:
  class Writable final : public vfs::WritableFile {
   public:
    Writable(std::unique_ptr<vfs::WritableFile> inner, int delay_us)
        : inner_(std::move(inner)), delay_us_(delay_us) {}
    Status Append(const Slice& data) override {
      if (delay_us_ > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
      }
      return inner_->Append(data);
    }
    Status Flush() override { return inner_->Flush(); }
    Status Sync() override { return inner_->Sync(); }
    Status Close() override { return inner_->Close(); }
    [[nodiscard]] uint64_t Size() const override { return inner_->Size(); }

   private:
    std::unique_ptr<vfs::WritableFile> inner_;
    int delay_us_;
  };

  vfs::Vfs& base_;
  const int delay_us_;
};

// With compaction enabled but never triggering (huge l0_compaction_trigger),
// L0 grows deterministically past the soft trigger and the controller paces
// writes — and never converts any of them into a hard L0 stall.
TEST_F(DbBackpressureTest, SlowdownPacesWritesBeforeTheHardStall) {
  Options options = BaseOptions();
  options.disable_compaction = false;
  options.l0_compaction_trigger = 1000;     // keep L0 files around
  options.l0_slowdown_writes_trigger = 4;   // pace early...
  options.l0_stop_writes_trigger = 10000;   // ...and never hard-stall
  // Slow enough that a 1 KiB batch's bucket credit (~15 ms) exceeds the
  // inter-arrival gap on any host (sanitizer builds included), so
  // consecutive paced writes always accrue a real delay.
  options.delayed_write_rate = 64 * KiB;
  Open(options);

  const std::string value(1 * KiB, 'p');
  constexpr int kPuts = 60;
  for (int i = 0; i < kPuts; ++i) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  const DbStats stats = db_->GetStats();
  EXPECT_GT(stats.slowdown_writes, 0u);
  EXPECT_GT(stats.slowdown_delay_micros, 0u);
  EXPECT_EQ(stats.stall_l0_micros, 0u);
  // Per-operation latency histogram saw every write.
  EXPECT_EQ(stats.write_latency.count(), static_cast<uint64_t>(kPuts));
  EXPECT_GE(stats.write_latency.max(), 0.0);
}

// The paper's checkpoint configuration (disable_compaction) leaves L0
// unbounded: the same workload must never be paced or L0-stalled.
TEST_F(DbBackpressureTest, CompactionDisabledNeverDelaysWrites) {
  Options options = BaseOptions();
  options.disable_compaction = true;
  options.l0_slowdown_writes_trigger = 4;
  Open(options);

  const std::string value(1 * KiB, 'p');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  const DbStats stats = db_->GetStats();
  EXPECT_EQ(stats.slowdown_writes, 0u);
  EXPECT_EQ(stats.slowdown_delay_micros, 0u);
  EXPECT_EQ(stats.stall_l0_micros, 0u);
}

// Memtable-queue stalls land in stall_memtable_micros, and the legacy
// write_stall_micros total is exactly the sum of the per-cause counters.
TEST_F(DbBackpressureTest, MemTableStallsAreAttributedToTheirCause) {
  SlowTableVfs slow(fs_, /*delay_us=*/2000);
  Options options = BaseOptions();
  options.vfs = &slow;
  options.disable_compaction = true;
  options.max_write_buffer_number = 2;  // single flush slot: stalls quickly
  Open(options);

  const std::string value(1 * KiB, 'm');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  const DbStats stats = db_->GetStats();
  EXPECT_GT(stats.stall_memtable_micros, 0u);
  EXPECT_EQ(stats.stall_l0_micros, 0u);
  EXPECT_EQ(stats.write_stall_micros,
            stats.stall_memtable_micros + stats.stall_l0_micros);

  // `slow` (test-body local) dies before the fixture's db_ would: close the
  // DB here so no still-running background job calls through its vtable.
  db_.reset();
}

// Hard L0 stalls (slowdown disabled, tiny stop trigger, slow compactions)
// land in stall_l0_micros, and the sum invariant holds with both causes
// potentially active.
TEST_F(DbBackpressureTest, L0StallsAreAttributedToTheirCause) {
  SlowTableVfs slow(fs_, /*delay_us=*/2000);
  Options options = BaseOptions();
  options.vfs = &slow;
  options.disable_compaction = false;
  // Compaction only becomes eligible at the stop trigger itself, so every
  // fourth flush leaves the writer hard-stalled until the (slow) compaction
  // that relieves it installs.
  options.l0_compaction_trigger = 4;
  options.l0_slowdown_writes_trigger = 0;  // isolate the hard stall
  options.l0_stop_writes_trigger = 4;
  options.max_write_buffer_number = 4;
  Open(options);

  const std::string value(1 * KiB, 'l');
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  const DbStats stats = db_->GetStats();
  EXPECT_GT(stats.stall_l0_micros, 0u);
  EXPECT_EQ(stats.write_stall_micros,
            stats.stall_memtable_micros + stats.stall_l0_micros);
  EXPECT_EQ(stats.slowdown_writes, 0u);

  // The compaction that released the final L0 stall may still be installing
  // (its table writes are the slow part); close the DB before `slow` dies.
  db_.reset();
}

// Thundering-herd regression: with N writers parked on a full memtable
// queue, the stall counters must record the wall-clock window once — not
// once per waiting writer. Serialized writes (no group commit) put every
// thread into MakeRoomForWrite itself, the worst case for the old
// accounting, which would report up to N x the elapsed time.
TEST_F(DbBackpressureTest, StallTimeDoesNotMultiplyWithWriterCount) {
  SlowTableVfs slow(fs_, /*delay_us=*/3000);
  Options options = BaseOptions();
  options.vfs = &slow;
  options.disable_compaction = true;
  options.enable_group_commit = false;
  options.max_write_buffer_number = 2;
  Open(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20;
  const std::string value(1 * KiB, 'h');
  std::atomic<int> failures{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "t" + std::to_string(t) + "." + std::to_string(i);
        if (!db_->Put({}, key, value).ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const uint64_t elapsed_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  const DbStats stats = db_->GetStats();
  EXPECT_GT(stats.stall_memtable_micros, 0u);
  // Wall-clock accounting: the recorded stall time cannot exceed the whole
  // write phase (plus scheduling slack), let alone approach N x it.
  EXPECT_LT(stats.write_stall_micros, elapsed_micros * 3 / 2);
  // Every serialized write still landed in the latency histogram.
  EXPECT_EQ(stats.write_latency.count(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);

  // Close before the test-local `slow` VFS goes out of scope.
  db_.reset();
}

// Options::bytes_per_sec wraps flush table writes in the shared limiter and
// surfaces its counters through DbStats.
TEST_F(DbBackpressureTest, RateLimiterCountersSurfaceInStats) {
  Options options = BaseOptions();
  options.disable_compaction = true;
  options.bytes_per_sec = 8 * MiB;
  Open(options);

  const std::string value(1 * KiB, 'r');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  const DbStats stats = db_->GetStats();
  EXPECT_GT(stats.rate_limited_bytes_flush, 0u);
  EXPECT_EQ(stats.rate_limited_bytes_compaction, 0u);  // nothing compacted
}

// Sharded store: latency histograms merge across shards, the slowdown and
// stall-cause counters aggregate, and per-shard stats stay visible.
TEST_F(DbBackpressureTest, ShardedStatsAggregateBackpressureCounters) {
  Options options = BaseOptions();
  options.num_shards = 4;
  options.disable_compaction = false;
  options.l0_compaction_trigger = 1000;
  options.l0_slowdown_writes_trigger = 2;
  options.l0_stop_writes_trigger = 10000;
  options.delayed_write_rate = 64 * KiB;  // see SlowdownPacesWrites above
  Open(options);

  const std::string value(1 * KiB, 's');
  constexpr int kPuts = 160;
  for (int i = 0; i < kPuts; ++i) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  std::string out;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Get({}, "key" + std::to_string(i), &out).ok());
  }

  const DbStats stats = db_->GetStats();
  EXPECT_EQ(stats.shards, 4u);
  EXPECT_EQ(stats.write_latency.count(), static_cast<uint64_t>(kPuts));
  EXPECT_EQ(stats.get_latency.count(), 50u);
  EXPECT_GT(stats.slowdown_writes, 0u);
  EXPECT_GT(stats.slowdown_delay_micros, 0u);

  std::vector<DbStats> per_shard;
  db_->GetShardStats(&per_shard);
  ASSERT_EQ(per_shard.size(), 4u);
  uint64_t writes = 0, slowdowns = 0;
  for (const DbStats& s : per_shard) {
    writes += s.write_latency.count();
    slowdowns += s.slowdown_writes;
  }
  EXPECT_EQ(writes, static_cast<uint64_t>(kPuts));
  EXPECT_EQ(slowdowns, stats.slowdown_writes);
}

}  // namespace
}  // namespace lsmio::lsm
