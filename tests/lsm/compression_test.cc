#include "lsm/compression.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace lsmio::lsm {
namespace {

void RoundTrip(const std::string& input) {
  std::string compressed;
  LzLiteCompress(input, &compressed);
  std::string output;
  ASSERT_TRUE(LzLiteDecompress(compressed, &output).ok()) << "n=" << input.size();
  EXPECT_EQ(output, input);
}

TEST(LzLiteTest, EmptyInput) { RoundTrip(""); }

TEST(LzLiteTest, TinyInputs) {
  RoundTrip("a");
  RoundTrip("ab");
  RoundTrip("abc");
  RoundTrip("abcd");
  RoundTrip("abcdefg");
}

TEST(LzLiteTest, HighlyRepetitiveCompressesWell) {
  const std::string input(100000, 'z');
  std::string compressed;
  LzLiteCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 20);
  std::string output;
  ASSERT_TRUE(LzLiteDecompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(LzLiteTest, RepeatedPattern) {
  std::string input;
  for (int i = 0; i < 5000; ++i) input += "the quick brown fox ";
  std::string compressed;
  LzLiteCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 4);
  std::string output;
  ASSERT_TRUE(LzLiteDecompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(LzLiteTest, IncompressibleRandomDataSurvives) {
  Rng rng(55);
  std::string input(65536, '\0');
  rng.Fill(input.data(), input.size());
  RoundTrip(input);
}

TEST(LzLiteTest, RandomSizesAndContents) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = rng.Uniform(20000);
    std::string input(n, '\0');
    // Mix of compressible runs and random bytes.
    size_t i = 0;
    while (i < n) {
      if (rng.Bernoulli(0.5)) {
        const size_t run = std::min(n - i, static_cast<size_t>(rng.Uniform(100) + 1));
        std::fill(input.begin() + static_cast<long>(i),
                  input.begin() + static_cast<long>(i + run),
                  static_cast<char>(rng.Uniform(256)));
        i += run;
      } else {
        input[i++] = static_cast<char>(rng.Next());
      }
    }
    RoundTrip(input);
  }
}

TEST(LzLiteTest, OverlappingCopyDistanceOne) {
  // "aaaa..." forces distance-1 overlapping copies (RLE mode).
  RoundTrip(std::string(5000, 'a') + "b" + std::string(5000, 'a'));
}

TEST(LzLiteTest, DecompressRejectsGarbage) {
  std::string output;
  EXPECT_TRUE(LzLiteDecompress(Slice("\xff\xff\xff garbage"), &output).IsCorruption());
}

TEST(LzLiteTest, DecompressRejectsTruncated) {
  std::string compressed;
  LzLiteCompress(std::string(1000, 'q'), &compressed);
  std::string output;
  EXPECT_FALSE(
      LzLiteDecompress(Slice(compressed.data(), compressed.size() / 2), &output).ok());
}

TEST(LzLiteTest, DecompressRejectsBadCopyDistance) {
  // Hand-craft: length header 4, then a copy with distance 9 but empty output.
  std::string bad;
  bad.push_back('\x04');  // varint64: uncompressed length 4
  bad.push_back('\x01');  // copy token
  bad.push_back('\x04');  // len 4
  bad.push_back('\x09');  // distance 9 > output size 0
  std::string output;
  EXPECT_TRUE(LzLiteDecompress(bad, &output).IsCorruption());
}

TEST(LzLiteTest, DecompressDetectsLengthMismatch) {
  std::string compressed;
  LzLiteCompress("hello world hello world", &compressed);
  // Tamper with the declared uncompressed length (first varint byte).
  compressed[0] = '\x05';
  std::string output;
  EXPECT_TRUE(LzLiteDecompress(compressed, &output).IsCorruption());
}

}  // namespace
}  // namespace lsmio::lsm
