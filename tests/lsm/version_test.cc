#include "lsm/version.h"

#include <gtest/gtest.h>

#include "lsm/comparator.h"
#include "lsm/table_cache.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq) {
  std::string encoded;
  AppendInternalKey(&encoded, user_key, seq, ValueType::kValue);
  return encoded;
}

FileMetaData MakeFile(uint64_t number, const std::string& smallest,
                      const std::string& largest, uint64_t size = 1000) {
  FileMetaData f;
  f.number = number;
  f.file_size = size;
  f.smallest = IKey(smallest, 100);
  f.largest = IKey(largest, 1);
  return f;
}

class VersionSetTest : public ::testing::Test {
 protected:
  VersionSetTest() : icmp_(BytewiseComparator()) {
    options_.vfs = &fs_;
    table_cache_ = std::make_unique<TableCache>("/db", options_, &icmp_, nullptr,
                                                nullptr, 10);
    versions_ = std::make_unique<VersionSet>("/db", options_, &icmp_,
                                             table_cache_.get());
  }

  vfs::MemVfs fs_;
  Options options_;
  InternalKeyComparator icmp_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<VersionSet> versions_;
};

TEST_F(VersionSetTest, FileNumbersAreMonotonic) {
  const uint64_t a = versions_->NewFileNumber();
  const uint64_t b = versions_->NewFileNumber();
  EXPECT_GT(b, a);
  versions_->ReuseFileNumber(b);
  EXPECT_EQ(versions_->NewFileNumber(), b);
}

TEST_F(VersionSetTest, MakeVersionAddsAndRemoves) {
  auto v1 = versions_->MakeVersion({{0, MakeFile(10, "a", "m")}}, {});
  ASSERT_TRUE(versions_->LogAndApply(v1).ok());
  EXPECT_EQ(versions_->current()->NumFiles(0), 1);

  auto v2 = versions_->MakeVersion({{0, MakeFile(11, "n", "z")}}, {});
  ASSERT_TRUE(versions_->LogAndApply(v2).ok());
  EXPECT_EQ(versions_->current()->NumFiles(0), 2);

  auto v3 = versions_->MakeVersion({{1, MakeFile(12, "a", "z", 2000)}},
                                   {{0, 10}, {0, 11}});
  ASSERT_TRUE(versions_->LogAndApply(v3).ok());
  EXPECT_EQ(versions_->current()->NumFiles(0), 0);
  EXPECT_EQ(versions_->current()->NumFiles(1), 1);
  EXPECT_EQ(versions_->current()->TotalBytes(1), 2000u);
  EXPECT_EQ(versions_->current()->TotalFiles(), 1);
}

TEST_F(VersionSetTest, L0OrderedNewestFirst) {
  auto v = versions_->MakeVersion(
      {{0, MakeFile(5, "a", "c")}, {0, MakeFile(9, "a", "c")}, {0, MakeFile(7, "a", "c")}},
      {});
  EXPECT_EQ(v->files[0][0].number, 9u);
  EXPECT_EQ(v->files[0][1].number, 7u);
  EXPECT_EQ(v->files[0][2].number, 5u);
}

TEST_F(VersionSetTest, DeeperLevelsSortedBySmallestKey) {
  auto v = versions_->MakeVersion(
      {{2, MakeFile(5, "m", "p")}, {2, MakeFile(6, "a", "c")}, {2, MakeFile(7, "x", "z")}},
      {});
  EXPECT_EQ(v->files[2][0].number, 6u);
  EXPECT_EQ(v->files[2][1].number, 5u);
  EXPECT_EQ(v->files[2][2].number, 7u);
}

TEST_F(VersionSetTest, SnapshotSurvivesRecovery) {
  versions_->SetLastSequence(777);
  versions_->SetLogNumber(42);
  auto v = versions_->MakeVersion(
      {{0, MakeFile(10, "a", "m")}, {3, MakeFile(11, "n", "z", 5000)}}, {});
  ASSERT_TRUE(versions_->LogAndApply(v).ok());

  // Fresh VersionSet recovering from the same directory.
  VersionSet recovered("/db", options_, &icmp_, table_cache_.get());
  bool save_manifest = false;
  ASSERT_TRUE(recovered.Recover(&save_manifest).ok());
  EXPECT_EQ(recovered.LastSequence(), 777u);
  EXPECT_EQ(recovered.LogNumber(), 42u);
  EXPECT_EQ(recovered.current()->NumFiles(0), 1);
  EXPECT_EQ(recovered.current()->NumFiles(3), 1);
  EXPECT_EQ(recovered.current()->files[3][0].file_size, 5000u);
  EXPECT_EQ(recovered.current()->files[0][0].smallest, IKey("a", 100));
}

TEST_F(VersionSetTest, RecoverFailsWithoutCurrent) {
  VersionSet fresh("/empty-db", options_, &icmp_, table_cache_.get());
  bool save_manifest = false;
  EXPECT_FALSE(fresh.Recover(&save_manifest).ok());
}

TEST_F(VersionSetTest, AddLiveFilesListsEverything) {
  auto v = versions_->MakeVersion(
      {{0, MakeFile(10, "a", "b")}, {1, MakeFile(20, "c", "d")}, {4, MakeFile(30, "e", "f")}},
      {});
  ASSERT_TRUE(versions_->LogAndApply(v).ok());
  std::vector<uint64_t> live;
  versions_->AddLiveFiles(&live);
  std::sort(live.begin(), live.end());
  EXPECT_EQ(live, (std::vector<uint64_t>{10, 20, 30}));
}

TEST_F(VersionSetTest, ComparatorMismatchDetectedOnRecover) {
  ASSERT_TRUE(versions_->LogAndApply(versions_->MakeVersion({}, {})).ok());

  // A comparator with a different name.
  class WeirdComparator : public Comparator {
   public:
    int Compare(const Slice& a, const Slice& b) const override { return a.compare(b); }
    const char* Name() const override { return "weird.Comparator"; }
    void FindShortestSeparator(std::string*, const Slice&) const override {}
    void FindShortSuccessor(std::string*) const override {}
  } weird;
  InternalKeyComparator weird_icmp(&weird);
  VersionSet recovered("/db", options_, &weird_icmp, table_cache_.get());
  bool save_manifest = false;
  EXPECT_TRUE(recovered.Recover(&save_manifest).IsInvalidArgument());
}

}  // namespace
}  // namespace lsmio::lsm
