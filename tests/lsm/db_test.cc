#include "lsm/db.h"

#include <gtest/gtest.h>

#include <map>
#include <atomic>
#include <memory>
#include <thread>

#include "common/random.h"
#include "common/units.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

class DbTest : public ::testing::Test {
 protected:
  Options BaseOptions() {
    Options options;
    options.vfs = &fs_;
    options.write_buffer_size = 64 * KiB;  // small so flushes happen in tests
    return options;
  }

  void Open(Options options) {
    db_.reset();
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  void OpenDefault() { Open(BaseOptions()); }

  std::string Get(const std::string& key) {
    std::string value;
    const Status s = db_->Get({}, key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    EXPECT_TRUE(s.ok()) << s.ToString();
    return value;
  }

  vfs::MemVfs fs_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbTest, EmptyDbGetIsNotFound) {
  OpenDefault();
  EXPECT_EQ(Get("anything"), "NOT_FOUND");
}

TEST_F(DbTest, PutGet) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "key", "value").ok());
  EXPECT_EQ(Get("key"), "value");
}

TEST_F(DbTest, OverwriteKeepsLatest) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());
  EXPECT_EQ(Get("k"), "v2");
}

TEST_F(DbTest, DeleteHidesKey) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->Delete({}, "k").ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
}

TEST_F(DbTest, DeleteOfMissingKeyIsOk) {
  OpenDefault();
  EXPECT_TRUE(db_->Delete({}, "ghost").ok());
}

TEST_F(DbTest, EmptyValueRoundTrips) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "k", "").ok());
  EXPECT_EQ(Get("k"), "");
}

TEST_F(DbTest, GetAcrossMemtableFlush) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "before", "flush").ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  ASSERT_TRUE(db_->Put({}, "after", "flush2").ok());
  EXPECT_EQ(Get("before"), "flush");
  EXPECT_EQ(Get("after"), "flush2");
  EXPECT_GE(db_->GetStats().memtable_flushes, 1u);
}

TEST_F(DbTest, DeleteShadowsFlushedValue) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  ASSERT_TRUE(db_->Delete({}, "k").ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
}

TEST_F(DbTest, AutomaticFlushOnBufferFull) {
  Options options = BaseOptions();
  options.write_buffer_size = 16 * KiB;
  options.disable_compaction = true;
  Open(options);

  const std::string value(1024, 'v');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  EXPECT_GE(db_->GetStats().memtable_flushes, 3u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(Get("key" + std::to_string(i)), value) << i;
  }
}

TEST_F(DbTest, WriteBatchIsAtomicallyVisible) {
  OpenDefault();
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(db_->Write({}, &batch).ok());
  EXPECT_EQ(Get("a"), "NOT_FOUND");
  EXPECT_EQ(Get("b"), "2");
}

TEST_F(DbTest, IteratorSeesSortedUserKeys) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "cherry", "3").ok());
  ASSERT_TRUE(db_->Put({}, "apple", "1").ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  ASSERT_TRUE(db_->Put({}, "banana", "2").ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator({}));
  std::vector<std::string> keys;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    keys.push_back(iter->key().ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "banana", "cherry"}));
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(DbTest, IteratorHidesDeletionsAndOldVersions) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "a", "old").ok());
  ASSERT_TRUE(db_->Put({}, "b", "keep").ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  ASSERT_TRUE(db_->Put({}, "a", "new").ok());
  ASSERT_TRUE(db_->Delete({}, "b").ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator({}));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "a");
  EXPECT_EQ(iter->value().ToString(), "new");
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(DbTest, IteratorBackward) {
  OpenDefault();
  for (const char* k : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(db_->Put({}, k, std::string("v") + k).ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator({}));
  std::vector<std::string> keys;
  for (iter->SeekToLast(); iter->Valid(); iter->Prev()) {
    keys.push_back(iter->key().ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"d", "c", "b", "a"}));
}

TEST_F(DbTest, IteratorSeekAndMixedDirections) {
  OpenDefault();
  for (const char* k : {"a", "c", "e", "g"}) {
    ASSERT_TRUE(db_->Put({}, k, "v").ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator({}));
  iter->Seek("d");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "e");
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "c");
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "e");
}

TEST_F(DbTest, SnapshotSeesFrozenState) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());
  ASSERT_TRUE(db_->Put({}, "new-key", "x").ok());

  // Current view.
  EXPECT_EQ(Get("k"), "v2");

  // Snapshot view via iterator (snapshot_sequence carried in ReadOptions is
  // the mechanism; the Snapshot object pins it against compaction GC).
  ReadOptions snap_opts;
  snap_opts.snapshot_sequence = 1;  // first put got sequence 1
  std::string value;
  ASSERT_TRUE(db_->Get(snap_opts, "k", &value).ok());
  EXPECT_EQ(value, "v1");
  EXPECT_TRUE(db_->Get(snap_opts, "new-key", &value).IsNotFound());

  db_->ReleaseSnapshot(snap);
}

TEST_F(DbTest, PaperCheckpointConfiguration) {
  // The exact configuration §3.1.1 describes: WAL off, compression off,
  // caching off, compaction off, async writes.
  Options options = BaseOptions();
  options.disable_wal = true;
  options.compression = CompressionType::kNone;
  options.disable_cache = true;
  options.disable_compaction = true;
  options.sync_writes = false;
  options.write_buffer_size = 32 * KiB;
  Open(options);

  const std::string block(8 * KiB, 'c');
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db_->Put({}, "ckpt/rank0/var" + std::to_string(i), block).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());  // paper's writeBarrier

  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(Get("ckpt/rank0/var" + std::to_string(i)), block) << i;
  }
  // With compaction disabled, multiple L0 files accumulate and no
  // compactions ever run.
  EXPECT_EQ(db_->GetStats().compactions, 0u);
  EXPECT_GE(db_->GetStats().memtable_flushes, 2u);
}

TEST_F(DbTest, CompactionReducesFileCountAndPreservesData) {
  Options options = BaseOptions();
  options.disable_compaction = false;
  options.l0_compaction_trigger = 4;
  options.write_buffer_size = 8 * KiB;
  Open(options);

  std::map<std::string, std::string> model;
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 40; ++i) {
      const std::string key = "key" + std::to_string(rng.Uniform(200));
      const std::string value = "v" + std::to_string(round) + "-" + std::to_string(i);
      model[key] = value;
      ASSERT_TRUE(db_->Put({}, key, value).ok());
    }
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_GE(db_->GetStats().compactions, 1u);

  for (const auto& [key, value] : model) {
    EXPECT_EQ(Get(key), value) << key;
  }
}

TEST_F(DbTest, CompactionDropsDeletedKeys) {
  Options options = BaseOptions();
  options.disable_compaction = false;
  Open(options);

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put({}, "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  for (int i = 0; i < 100; i += 2) {
    ASSERT_TRUE(db_->Delete({}, "k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  ASSERT_TRUE(db_->CompactRange().ok());

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(Get("k" + std::to_string(i)), (i % 2 == 0) ? "NOT_FOUND" : "v");
  }
}

TEST_F(DbTest, StatsCountOperations) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Put({}, "b", "2").ok());
  ASSERT_TRUE(db_->Delete({}, "a").ok());
  (void)Get("b");
  (void)Get("missing");

  const DbStats stats = db_->GetStats();
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.get_hits, 1u);
  EXPECT_GT(stats.bytes_written, 0u);
}

TEST_F(DbTest, DisableWalSkipsWalBytes) {
  Options options = BaseOptions();
  options.disable_wal = true;
  Open(options);
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  EXPECT_EQ(db_->GetStats().wal_bytes, 0u);

  options.disable_wal = false;
  Open(options);
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  EXPECT_GT(db_->GetStats().wal_bytes, 0u);
}

TEST_F(DbTest, ErrorIfExists) {
  OpenDefault();
  db_.reset();
  Options options = BaseOptions();
  options.error_if_exists = true;
  std::unique_ptr<DB> db2;
  EXPECT_TRUE(DB::Open(options, "/db", &db2).IsInvalidArgument());
}

TEST_F(DbTest, CreateIfMissingFalseFailsOnMissing) {
  Options options = BaseOptions();
  options.create_if_missing = false;
  std::unique_ptr<DB> db2;
  EXPECT_FALSE(DB::Open(options, "/nonexistent-db", &db2).ok());
}

TEST_F(DbTest, DestroyRemovesFiles) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  db_.reset();
  EXPECT_GT(fs_.FileCount(), 0u);
  ASSERT_TRUE(DB::Destroy(BaseOptions(), "/db").ok());
  EXPECT_EQ(fs_.FileCount(), 0u);
}

TEST_F(DbTest, LargeValues) {
  OpenDefault();
  Rng rng(123);
  std::string big(5 * MiB, '\0');
  rng.Fill(big.data(), big.size());
  ASSERT_TRUE(db_->Put({}, "big", big).ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  EXPECT_EQ(Get("big"), big);
}

TEST_F(DbTest, ReadOnlyOpenServesDataAndRejectsWrites) {
  OpenDefault();
  ASSERT_TRUE(db_->Put({}, "flushed", "table").ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  ASSERT_TRUE(db_->Put({}, "walled", "wal-only").ok());
  db_.reset();  // crash-style close: "walled" lives only in the WAL

  Options options = BaseOptions();
  options.read_only = true;
  std::unique_ptr<DB> ro;
  ASSERT_TRUE(DB::Open(options, "/db", &ro).ok());

  std::string value;
  ASSERT_TRUE(ro->Get({}, "flushed", &value).ok());
  EXPECT_EQ(value, "table");
  ASSERT_TRUE(ro->Get({}, "walled", &value).ok());  // replayed into memory
  EXPECT_EQ(value, "wal-only");

  EXPECT_TRUE(ro->Put({}, "nope", "x").IsInvalidArgument());
  EXPECT_TRUE(ro->Delete({}, "flushed").IsInvalidArgument());
  EXPECT_TRUE(ro->FlushMemTable(true).ok());  // harmless no-op
}

TEST_F(DbTest, ConcurrentReadOnlyOpensOfOneStore) {
  OpenDefault();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Put({}, "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  db_.reset();

  // Many concurrent read-only opens must not corrupt the store (the
  // ADIOS2-plugin read path does exactly this across ranks).
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, &failures] {
      Options options = BaseOptions();
      options.read_only = true;
      std::unique_ptr<DB> ro;
      if (!DB::Open(options, "/db", &ro).ok()) {
        ++failures;
        return;
      }
      std::string value;
      for (int i = 0; i < 50; ++i) {
        if (!ro->Get({}, "k" + std::to_string(i), &value).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // The store is still writable afterwards.
  OpenDefault();
  EXPECT_EQ(Get("k0"), "v");
}

TEST_F(DbTest, ReadOnlyOpenOfMissingDbFails) {
  Options options = BaseOptions();
  options.read_only = true;
  std::unique_ptr<DB> ro;
  EXPECT_TRUE(DB::Open(options, "/missing-db", &ro).IsNotFound());
}

TEST_F(DbTest, ApproximateMemoryUsageGrowsAndResets) {
  Options options = BaseOptions();
  options.write_buffer_size = 4 * MiB;  // no flush during the test
  Open(options);
  const uint64_t before = db_->ApproximateMemoryUsage();
  ASSERT_TRUE(db_->Put({}, "k", std::string(1 * MiB, 'x')).ok());
  EXPECT_GT(db_->ApproximateMemoryUsage(), before + 512 * KiB);
}

}  // namespace
}  // namespace lsmio::lsm
