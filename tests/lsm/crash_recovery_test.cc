// Crash-consistency under fault injection: write through a FaultVfs, kill
// the process at a randomized fault point, simulate power loss (unsynced
// data reverts), reopen, and verify the durability contract:
//
//   * every acked write — a sync write that returned OK, or any write
//     sitting below a successful write barrier — survives with its value;
//   * an unacked write may survive or vanish, but whatever value a key has
//     must be one the caller legitimately attempted;
//   * the store itself never corrupts: reopen succeeds, a full iteration
//     sweep sees only known keys, and new writes work.
//
// The iteration count defaults to 200 (the CI soak); override with
// LSMIO_CRASH_ITERS for quick local runs or longer soaks. LSMIO_SHARDS=N
// runs the randomized soak against an N-way sharded store (per-shard WALs
// and manifests under shard-NNN/ all see the same fault model); a smaller
// always-on sharded soak runs regardless. LSMIO_VALUE_LOG=1 runs the main
// soak with WAL-time key/value separation on (blob segments join the fault
// schedule); a smaller always-on value-log soak runs regardless.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "lsm/db.h"
#include "vfs/fault_vfs.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

int IterationsFromEnv() {
  const char* env = std::getenv("LSMIO_CRASH_ITERS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

int ShardsFromEnv() {
  const char* env = std::getenv("LSMIO_SHARDS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1;
}

// Separation threshold for the main soak: LSMIO_VALUE_LOG=1 turns the
// value log on with a 64-byte threshold, so the 16-256 byte soak values
// split between inline and separated storage.
uint64_t ValueLogThresholdFromEnv() {
  const char* env = std::getenv("LSMIO_VALUE_LOG");
  return env != nullptr && std::atoi(env) > 0 ? 64 : 0;
}

// Values are >= 16 random bytes, so a 1-byte sentinel can never collide.
const std::string kDeleted = "\xDE";

struct KeyHistory {
  std::vector<std::string> values;  // every attempted value, oldest first
  // Index below which recovery must not regress: the newest value covered
  // by an ack (sync write OK / write barrier OK). SIZE_MAX = never acked.
  size_t acked = SIZE_MAX;
};

vfs::FaultPoint RandomFaultPoint(Rng& rng, bool include_blob) {
  vfs::FaultPoint point;
  switch (rng.Uniform(4)) {
    case 0: point.kind = vfs::FaultKind::kFailOp; break;
    case 1: point.kind = vfs::FaultKind::kShortWrite; break;
    case 2: point.kind = vfs::FaultKind::kTornWrite; break;
    default: point.kind = vfs::FaultKind::kSyncFailure; break;
  }
  // kBlobFile only joins the draw when the value log is on; otherwise a
  // blob-only fault point would never fire and the iteration runs fault-free.
  static constexpr unsigned kFileChoices[] = {
      vfs::kWalFile, vfs::kTableFile, vfs::kManifestFile, vfs::kAnyFile,
      vfs::kBlobFile};
  point.file_classes = kFileChoices[rng.Uniform(include_blob ? 5 : 4)];
  static constexpr unsigned kOpChoices[] = {
      vfs::kAppendOp, vfs::kSyncOp, vfs::kCreateOp, vfs::kAnyWriteOp};
  point.ops = kOpChoices[rng.Uniform(4)];
  point.countdown = static_cast<int>(rng.Range(1, 150));
  return point;
}

void RunCrashIteration(uint64_t seed, int num_shards,
                       uint64_t value_log_threshold) {
  Rng rng(seed);
  vfs::MemVfs base;
  vfs::FaultVfs fs(base);

  Options options;
  options.vfs = &fs;
  options.num_shards = num_shards;
  options.write_buffer_size = 8 * KiB;  // small enough to force flushes
  options.disable_compaction = rng.Bernoulli(0.5);
  options.enable_group_commit = rng.Bernoulli(0.75);
  options.value_log_threshold = value_log_threshold;
  if (value_log_threshold > 0) {
    options.value_log_segment_size = 4 * KiB;  // force rotation mid-run
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok()) << "seed " << seed;

  std::map<std::string, KeyHistory> model;
  fs.Arm(RandomFaultPoint(rng, value_log_threshold > 0));

  const int kOps = 80;
  const int kKeySpace = 16;
  for (int i = 0; i < kOps; ++i) {
    const std::string key = "key" + std::to_string(rng.Uniform(kKeySpace));
    const bool is_delete = rng.Bernoulli(0.1);
    std::string value;
    if (!is_delete) {
      value.resize(16 + rng.Uniform(240));
      rng.Fill(value.data(), value.size());
    }
    const bool sync = rng.Bernoulli(0.4);

    // Record the attempt before issuing it: a failed write may still leave
    // a durable WAL record behind (e.g. append OK, fsync torn), so its
    // value is legitimate on recovery even though it was never acked.
    KeyHistory& h = model[key];
    h.values.push_back(is_delete ? kDeleted : value);

    WriteOptions wo;
    wo.sync = sync;
    const Status s =
        is_delete ? db->Delete(wo, key) : db->Put(wo, key, value);
    if (!s.ok()) break;  // the engine latched read-only; stop writing
    if (sync) h.acked = h.values.size() - 1;

    if (rng.Bernoulli(0.05)) {
      if (!db->FlushMemTable(true).ok()) break;
      // A successful write barrier acks everything written so far.
      for (auto& [k, hist] : model) hist.acked = hist.values.size() - 1;
    }
  }

  // Power loss: drop the process state, then revert every file to its
  // synced prefix plus a random sliver of the unsynced tail.
  db.reset();
  ASSERT_TRUE(fs.DropUnsyncedData(seed ^ 0x9e3779b97f4a7c15ULL).ok());

  ASSERT_TRUE(DB::Open(options, "/db", &db).ok())
      << "reopen after crash failed, seed " << seed;

  // Acked writes must survive; every surviving value must be legitimate.
  for (const auto& [key, h] : model) {
    std::string value;
    const Status s = db->Get({}, key, &value);
    ASSERT_TRUE(s.ok() || s.IsNotFound())
        << "seed " << seed << " key " << key << ": " << s.ToString();

    const size_t lo = h.acked == SIZE_MAX ? 0 : h.acked;
    bool acceptable = false;
    if (s.IsNotFound()) {
      if (h.acked == SIZE_MAX) {
        acceptable = true;  // never acked: allowed to vanish entirely
      } else {
        for (size_t i = lo; i < h.values.size(); ++i) {
          if (h.values[i] == kDeleted) acceptable = true;
        }
      }
    } else {
      for (size_t i = lo; i < h.values.size(); ++i) {
        if (h.values[i] != kDeleted && h.values[i] == value) acceptable = true;
      }
    }
    int stale_match = -1;
    if (!acceptable && s.ok()) {
      for (size_t i = 0; i < h.values.size(); ++i) {
        if (h.values[i] == value) stale_match = static_cast<int>(i);
      }
    }
    ASSERT_TRUE(acceptable)
        << "seed " << seed << " key " << key << " acked_index="
        << (h.acked == SIZE_MAX ? -1 : static_cast<long>(h.acked))
        << " attempts=" << h.values.size()
        << (s.IsNotFound()
                ? " lost an acked write"
                : (stale_match >= 0
                       ? " regressed to stale attempt " + std::to_string(stale_match)
                       : " holds a value never written"));
  }

  // Full sweep: iteration must complete cleanly and see only known keys.
  std::unique_ptr<Iterator> it(db->NewIterator({}));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    ASSERT_TRUE(model.count(it->key().ToString()) == 1)
        << "seed " << seed << " unknown key " << it->key().ToString();
  }
  ASSERT_TRUE(it->status().ok()) << "seed " << seed << ": " << it->status().ToString();
  it.reset();

  // The reopened store is healthy and writable again.
  ASSERT_TRUE(db->HealthStatus().ok()) << "seed " << seed;
  WriteOptions wo;
  wo.sync = true;
  ASSERT_TRUE(db->Put(wo, "post-recovery", "writable").ok()) << "seed " << seed;
}

TEST(CrashRecoveryTest, RandomizedFaultPointsPreserveAckedWrites) {
  const int iters = IterationsFromEnv();
  const int shards = ShardsFromEnv();
  const uint64_t threshold = ValueLogThresholdFromEnv();
  for (int i = 0; i < iters; ++i) {
    ASSERT_NO_FATAL_FAILURE(
        RunCrashIteration(1000 + static_cast<uint64_t>(i), shards, threshold))
        << "iteration " << i << " shards " << shards
        << " value_log_threshold " << threshold;
  }
}

// Always-on sharded coverage: a shorter soak against a 4-way sharded store
// (the CI shards leg runs the full count via LSMIO_SHARDS=4). A distinct
// seed base keeps the fault schedules disjoint from the main soak.
TEST(CrashRecoveryTest, ShardedStoreSurvivesRandomizedFaultPoints) {
  if (ShardsFromEnv() > 1) {
    GTEST_SKIP() << "main soak already running sharded via LSMIO_SHARDS";
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_NO_FATAL_FAILURE(
        RunCrashIteration(77000 + static_cast<uint64_t>(i), /*num_shards=*/4,
                          ValueLogThresholdFromEnv()))
        << "iteration " << i;
  }
}

// Always-on value-log coverage: a shorter soak with separation enabled and
// blob segments in the fault schedule (the CI value-log leg runs the full
// count via LSMIO_VALUE_LOG=1). A distinct seed base keeps the fault
// schedules disjoint from the other soaks.
TEST(CrashRecoveryTest, ValueLogStoreSurvivesRandomizedFaultPoints) {
  if (ValueLogThresholdFromEnv() > 0) {
    GTEST_SKIP() << "main soak already running with LSMIO_VALUE_LOG";
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_NO_FATAL_FAILURE(
        RunCrashIteration(88000 + static_cast<uint64_t>(i), /*num_shards=*/1,
                          /*value_log_threshold=*/64))
        << "iteration " << i;
  }
}

TEST(CrashRecoveryTest, StickyReadOnlyModeSurfacesTypedStatus) {
  vfs::MemVfs base;
  vfs::FaultVfs fs(base);
  Options options;
  options.vfs = &fs;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions sync_write;
  sync_write.sync = true;
  ASSERT_TRUE(db->Put(sync_write, "before", "durable").ok());
  ASSERT_TRUE(db->HealthStatus().ok());

  vfs::FaultPoint point;
  point.file_classes = vfs::kWalFile;
  point.ops = vfs::kAppendOp;
  fs.Arm(point);

  // The failing write surfaces the raw I/O error...
  EXPECT_TRUE(db->Put({}, "failing", "x").IsIoError());
  // ...and everything after it gets the typed sticky status.
  EXPECT_TRUE(db->Put({}, "after", "y").IsReadOnly());
  EXPECT_TRUE(db->Delete({}, "before").IsReadOnly());
  EXPECT_TRUE(db->HealthStatus().IsReadOnly());
  EXPECT_FALSE(db->FlushMemTable(true).ok());
  EXPECT_EQ(db->GetStats().read_only_mode, 1U);

  // Reads keep serving while the engine is read-only.
  std::string value;
  EXPECT_TRUE(db->Get({}, "before", &value).ok());
  EXPECT_EQ(value, "durable");

  // Reopening clears the condition.
  db.reset();
  ASSERT_TRUE(fs.DropUnsyncedData(/*seed=*/42).ok());
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  EXPECT_TRUE(db->HealthStatus().ok());
  EXPECT_EQ(db->GetStats().read_only_mode, 0U);
  EXPECT_TRUE(db->Put(sync_write, "after", "works").ok());
  EXPECT_TRUE(db->Get({}, "before", &value).ok());
  EXPECT_EQ(value, "durable");
}

TEST(CrashRecoveryTest, OrphanedSstFromCrashedFlushIsTolerated) {
  vfs::MemVfs base;
  vfs::FaultVfs fs(base);
  Options options;
  options.vfs = &fs;
  options.write_buffer_size = 8 * KiB;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions sync_write;
  sync_write.sync = true;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        db->Put(sync_write, "k" + std::to_string(i), std::string(100, 'v')).ok());
  }

  // Crash mid-flush: the table file is half-written when the disk goes away.
  vfs::FaultPoint point;
  point.kind = vfs::FaultKind::kShortWrite;
  point.file_classes = vfs::kTableFile;
  point.ops = vfs::kAppendOp;
  fs.Arm(point);
  EXPECT_FALSE(db->FlushMemTable(true).ok());
  db.reset();
  ASSERT_TRUE(fs.DropUnsyncedData(/*seed=*/7).ok());

  // The orphaned partial .sst must not break recovery: the manifest never
  // referenced it, and the WAL still covers every acked write.
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  for (int i = 0; i < 20; ++i) {
    std::string value;
    ASSERT_TRUE(db->Get({}, "k" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, std::string(100, 'v'));
  }
}

TEST(CrashRecoveryTest, PreexistingOrphanSstIsSweptOnOpen) {
  vfs::MemVfs base;
  vfs::FaultVfs fs(base);
  Options options;
  options.vfs = &fs;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  WriteOptions sync_write;
  sync_write.sync = true;
  ASSERT_TRUE(db->Put(sync_write, "live", "data").ok());
  ASSERT_TRUE(db->FlushMemTable(true).ok());
  db.reset();

  // Drop a garbage table file a crashed flush could have left behind.
  ASSERT_TRUE(vfs::WriteStringToFile(base, "/db/000999.sst",
                                     "not a real sstable").ok());

  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  std::string value;
  EXPECT_TRUE(db->Get({}, "live", &value).ok());
  EXPECT_EQ(value, "data");
  // The orphan is not in the manifest, so the open-time sweep removed it.
  EXPECT_FALSE(base.FileExists("/db/000999.sst"));
}

}  // namespace
}  // namespace lsmio::lsm
