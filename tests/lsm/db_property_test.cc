// Property-based engine validation: a randomized op stream applied both to
// the DB and to an in-memory reference model must agree, across the option
// matrix of the paper's knobs (WAL, compression, cache, compaction, sync).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "common/units.h"
#include "lsm/db.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

struct EngineConfig {
  bool disable_wal;
  bool compress;
  bool disable_cache;
  bool disable_compaction;
  bool sync_writes;
  bool use_mmap;
};

std::string PrintConfig(const ::testing::TestParamInfo<EngineConfig>& info) {
  const EngineConfig& c = info.param;
  std::string name;
  name += c.disable_wal ? "NoWal" : "Wal";
  name += c.compress ? "Lz" : "Raw";
  name += c.disable_cache ? "NoCache" : "Cache";
  name += c.disable_compaction ? "NoCompact" : "Compact";
  name += c.sync_writes ? "Sync" : "Async";
  name += c.use_mmap ? "Mmap" : "Pread";
  return name;
}

class DbPropertyTest : public ::testing::TestWithParam<EngineConfig> {
 protected:
  Options MakeOptions() {
    const EngineConfig& c = GetParam();
    Options options;
    options.vfs = &fs_;
    options.write_buffer_size = 16 * KiB;  // force flushes during the run
    options.disable_wal = c.disable_wal;
    options.compression = c.compress ? CompressionType::kLzLite : CompressionType::kNone;
    options.disable_cache = c.disable_cache;
    options.disable_compaction = c.disable_compaction;
    options.sync_writes = c.sync_writes;
    options.use_mmap = c.use_mmap;
    options.l0_compaction_trigger = 3;
    return options;
  }

  vfs::MemVfs fs_;
};

TEST_P(DbPropertyTest, RandomOpsMatchReferenceModel) {
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());

  std::map<std::string, std::string> model;
  Rng rng(20260707);

  constexpr int kOps = 3000;
  for (int op = 0; op < kOps; ++op) {
    const uint64_t dice = rng.Uniform(100);
    const std::string key = "key" + std::to_string(rng.Uniform(150));
    if (dice < 55) {
      std::string value(rng.Uniform(300) + 1, '\0');
      rng.Fill(value.data(), value.size());
      model[key] = value;
      ASSERT_TRUE(db->Put({}, key, value).ok());
    } else if (dice < 75) {
      model.erase(key);
      ASSERT_TRUE(db->Delete({}, key).ok());
    } else if (dice < 95) {
      std::string value;
      const Status s = db->Get({}, key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound()) << "op " << op << " key " << key;
      } else {
        ASSERT_TRUE(s.ok()) << "op " << op << ": " << s.ToString();
        ASSERT_EQ(value, it->second) << "op " << op;
      }
    } else {
      ASSERT_TRUE(db->FlushMemTable(/*wait=*/rng.Bernoulli(0.5)).ok());
    }
  }

  // Final full comparison via iterator.
  std::unique_ptr<Iterator> iter(db->NewIterator({}));
  auto expected = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++expected) {
    ASSERT_NE(expected, model.end()) << "extra key " << iter->key().ToString();
    EXPECT_EQ(iter->key().ToString(), expected->first);
    EXPECT_EQ(iter->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, model.end());
  ASSERT_TRUE(iter->status().ok());
}

TEST_P(DbPropertyTest, ReopenPreservesBarrieredState) {
  std::map<std::string, std::string> model;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
    Rng rng(42);
    for (int i = 0; i < 500; ++i) {
      const std::string key = "k" + std::to_string(rng.Uniform(100));
      std::string value(rng.Uniform(200) + 1, '\0');
      rng.Fill(value.data(), value.size());
      model[key] = value;
      ASSERT_TRUE(db->Put({}, key, value).ok());
    }
    // Barrier makes everything durable regardless of WAL setting.
    ASSERT_TRUE(db->FlushMemTable(true).ok());
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(MakeOptions(), "/db", &db).ok());
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(db->Get({}, key, &got).ok()) << key;
    EXPECT_EQ(got, value) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OptionMatrix, DbPropertyTest,
    ::testing::Values(
        // The paper's checkpoint configuration.
        EngineConfig{true, false, true, true, false, false},
        // Default durable configuration.
        EngineConfig{false, false, false, false, false, false},
        // Compression on, compaction on, synced.
        EngineConfig{false, true, false, false, true, false},
        // WAL off but compaction on.
        EngineConfig{true, false, false, false, false, true},
        // Everything on.
        EngineConfig{false, true, false, false, false, true},
        // Cache off, compression on, no compaction.
        EngineConfig{false, true, true, true, false, false}),
    PrintConfig);

}  // namespace
}  // namespace lsmio::lsm
