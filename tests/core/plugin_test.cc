#include "core/plugin.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "vfs/mem_vfs.h"

namespace lsmio {
namespace {

class PluginTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterLsmioPlugin(); }

  vfs::MemVfs fs_;
};

TEST_F(PluginTest, RegistrationIsIdempotent) {
  EXPECT_STREQ(RegisterLsmioPlugin(), "LsmioPlugin");
  EXPECT_TRUE(a2::IsEngineRegistered("LsmioPlugin"));
  RegisterLsmioPlugin();
  EXPECT_TRUE(a2::IsEngineRegistered("LsmioPlugin"));
}

TEST_F(PluginTest, WriteThenReadThroughA2Api) {
  a2::Adios adios(fs_);
  a2::IO& io = adios.DeclareIO("ckpt");
  io.SetEngine("LsmioPlugin");
  a2::Variable* var = io.DefineVariable("field", 1000, 0, 1000, 8);

  std::string data(8000, '\0');
  Rng rng(10);
  rng.Fill(data.data(), data.size());

  auto writer = io.Open("/plugin-out", a2::Mode::kWrite);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer.value()->Put(*var, data.data(), a2::PutMode::kDeferred).ok());
  ASSERT_TRUE(writer.value()->PerformPuts().ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto reader = io.Open("/plugin-out", a2::Mode::kRead);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::string out(8000, '\0');
  ASSERT_TRUE(reader.value()->Get(*var, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST_F(PluginTest, XmlConfigSwitchesToPluginWithoutCodeChange) {
  // The paper's headline plugin property: same application code, engine
  // selected by configuration.
  const std::string config = R"(
    <adios-config>
      <io name="checkpoint">
        <engine type="LsmioPlugin">
          <parameter key="BufferChunkSize" value="1M"/>
        </engine>
      </io>
    </adios-config>)";
  a2::Adios adios(fs_, config);
  a2::IO& io = adios.DeclareIO("checkpoint");
  EXPECT_EQ(io.engine_type(), "LsmioPlugin");

  a2::Variable* var = io.DefineVariable("v", 64, 0, 64, 4);
  auto writer = io.Open("/xml-out", a2::Mode::kWrite);
  ASSERT_TRUE(writer.ok());
  const std::string data(256, 'x');
  ASSERT_TRUE(writer.value()->Put(*var, data.data(), a2::PutMode::kSync).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto reader = io.Open("/xml-out", a2::Mode::kRead);
  ASSERT_TRUE(reader.ok());
  std::string out(256, '\0');
  ASSERT_TRUE(reader.value()->Get(*var, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST_F(PluginTest, MultiRankStoresAssembleOnRead) {
  constexpr int kRanks = 4;
  constexpr uint64_t kPerRank = 256;
  for (int r = 0; r < kRanks; ++r) {
    a2::Adios adios(fs_, "", r, kRanks);
    a2::IO& io = adios.DeclareIO("ckpt");
    io.SetEngine("LsmioPlugin");
    a2::Variable* var =
        io.DefineVariable("field", kRanks * kPerRank,
                          static_cast<uint64_t>(r) * kPerRank, kPerRank, 4);
    auto writer = io.Open("/mr", a2::Mode::kWrite).value();
    const std::string payload(kPerRank * 4, static_cast<char>('A' + r));
    ASSERT_TRUE(writer->Put(*var, payload.data(), a2::PutMode::kDeferred).ok());
    ASSERT_TRUE(writer->Close().ok());  // Close implies PerformPuts + barrier
  }

  a2::Adios adios(fs_);
  a2::IO& io = adios.DeclareIO("read");
  io.SetEngine("LsmioPlugin");
  a2::Variable* var =
      io.DefineVariable("field", kRanks * kPerRank, 0, kRanks * kPerRank, 4);
  auto reader = io.Open("/mr", a2::Mode::kRead).value();
  std::string out(kRanks * kPerRank * 4, '\0');
  ASSERT_TRUE(reader->Get(*var, out.data()).ok());
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(out[static_cast<size_t>(r) * kPerRank * 4], 'A' + r) << r;
  }

  // Cross-rank partial selection.
  var->SetSelection(kPerRank - 8, 16);
  std::string partial(16 * 4, '\0');
  ASSERT_TRUE(reader->Get(*var, partial.data()).ok());
  EXPECT_EQ(partial.substr(0, 32), std::string(32, 'A'));
  EXPECT_EQ(partial.substr(32), std::string(32, 'B'));
}

TEST_F(PluginTest, MultipleVariablesAndSteps) {
  a2::Adios adios(fs_);
  a2::IO& io = adios.DeclareIO("ckpt");
  io.SetEngine("LsmioPlugin");
  a2::Variable* temperature = io.DefineVariable("T", 128, 0, 128, 8);
  a2::Variable* pressure = io.DefineVariable("P", 64, 0, 64, 8);

  auto writer = io.Open("/vars", a2::Mode::kWrite).value();
  const std::string t_data(1024, 'T');
  const std::string p_data(512, 'P');
  ASSERT_TRUE(writer->Put(*temperature, t_data.data(), a2::PutMode::kDeferred).ok());
  ASSERT_TRUE(writer->Put(*pressure, p_data.data(), a2::PutMode::kDeferred).ok());
  ASSERT_TRUE(writer->PerformPuts().ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = io.Open("/vars", a2::Mode::kRead).value();
  std::string t_out(1024, '\0');
  std::string p_out(512, '\0');
  ASSERT_TRUE(reader->Get(*temperature, t_out.data()).ok());
  ASSERT_TRUE(reader->Get(*pressure, p_out.data()).ok());
  EXPECT_EQ(t_out, t_data);
  EXPECT_EQ(p_out, p_data);
}

TEST_F(PluginTest, ReadMissingPathFails) {
  a2::Adios adios(fs_);
  a2::IO& io = adios.DeclareIO("ckpt");
  io.SetEngine("LsmioPlugin");
  EXPECT_FALSE(io.Open("/no-such-path", a2::Mode::kRead).ok());
}

TEST_F(PluginTest, UncoveredSelectionFails) {
  a2::Adios adios(fs_);
  a2::IO& io = adios.DeclareIO("ckpt");
  io.SetEngine("LsmioPlugin");
  a2::Variable* var = io.DefineVariable("v", 100, 0, 50, 1);
  auto writer = io.Open("/unc", a2::Mode::kWrite).value();
  const std::string data(50, 'x');
  ASSERT_TRUE(writer->Put(*var, data.data(), a2::PutMode::kSync).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = io.Open("/unc", a2::Mode::kRead).value();
  var->SetSelection(0, 100);
  std::string out(100, '\0');
  EXPECT_TRUE(reader->Get(*var, out.data()).IsNotFound());
}

}  // namespace
}  // namespace lsmio
