// MemoryArbiter (DESIGN.md §15): process-wide budget shared by many stores.
// Covers the arbiter's own victim/accounting policy plus the manager-level
// contracts: per-tenant cache charging survives store close/reopen with
// correct attribution, and an arbiter-forced flush on one store never blocks
// an unrelated store's group-commit leader.
#include "core/memory_arbiter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "core/manager.h"
#include "vfs/mem_vfs.h"

namespace lsmio {
namespace {

// --- arbiter policy unit tests (no engine involved) ---

class ArbiterPolicyTest : public ::testing::Test {
 protected:
  MemoryArbiterOptions SmallBudget() {
    MemoryArbiterOptions options;
    options.write_budget_bytes = 10 * MiB;
    options.flush_watermark = 0.8;  // victims from 8 MiB aggregate
    options.min_victim_bytes = 64 * KiB;
    return options;
  }
};

TEST_F(ArbiterPolicyTest, NoVictimsBelowWatermark) {
  MemoryArbiter arbiter(SmallBudget());
  int flushes = 0;
  const uint64_t a = arbiter.Attach(1, [&] { ++flushes; });
  arbiter.UpdateUsage(a, 7 * MiB, /*wrote=*/true);
  EXPECT_EQ(flushes, 0);
  EXPECT_EQ(arbiter.flush_requests(), 0u);
  EXPECT_EQ(arbiter.TotalUsage(), 7 * MiB);
  arbiter.Detach(a);
}

TEST_F(ArbiterPolicyTest, PicksColdestVictimFirst) {
  MemoryArbiter arbiter(SmallBudget());
  int cold_flushes = 0;
  int hot_flushes = 0;
  const uint64_t cold = arbiter.Attach(1, [&] { ++cold_flushes; });
  const uint64_t hot = arbiter.Attach(2, [&] { ++hot_flushes; });
  // cold writes once, then hot keeps writing: hot has the later tick.
  arbiter.UpdateUsage(cold, 4 * MiB, /*wrote=*/true);
  arbiter.UpdateUsage(hot, 3 * MiB, /*wrote=*/true);
  EXPECT_EQ(cold_flushes, 0);
  // This push crosses the 8 MiB watermark; the cold store is the victim.
  arbiter.UpdateUsage(hot, 5 * MiB, /*wrote=*/true);
  EXPECT_EQ(cold_flushes, 1);
  EXPECT_EQ(hot_flushes, 0);
  EXPECT_EQ(arbiter.flush_requests(), 1u);
  arbiter.Detach(cold);
  arbiter.Detach(hot);
}

TEST_F(ArbiterPolicyTest, ColdFirstBeatsSizeAndPendingReleaseStopsRepicks) {
  MemoryArbiter arbiter(SmallBudget());
  int big_flushes = 0;
  int small_flushes = 0;
  // `small` attaches first, so it is strictly colder than `big`.
  const uint64_t small = arbiter.Attach(1, [&] { ++small_flushes; });
  const uint64_t big = arbiter.Attach(2, [&] { ++big_flushes; });
  arbiter.UpdateUsage(small, 2 * MiB, /*wrote=*/false);
  arbiter.UpdateUsage(big, 7 * MiB, /*wrote=*/false);
  // 9 MiB aggregate crosses the 8 MiB watermark: the COLDER store is the
  // victim even though the other one is 3.5x larger — cold-first dominates
  // size. Its pending 2 MiB release brings usage-net-of-inflight back
  // under the watermark, so no second victim is picked.
  EXPECT_EQ(small_flushes, 1);
  EXPECT_EQ(big_flushes, 0);
  EXPECT_EQ(arbiter.flush_requests(), 1u);

  // The victim's flush lands (its usage collapses): the pick is spent.
  // When pressure returns, the drained store sits below min_victim_bytes
  // and is ineligible, so the big (and only eligible) store is picked
  // even though it is the hottest.
  arbiter.UpdateUsage(small, 16 * KiB, /*wrote=*/false);
  EXPECT_EQ(arbiter.flush_requests(), 1u);  // below watermark again
  arbiter.UpdateUsage(big, 8 * MiB + 512 * KiB, /*wrote=*/true);
  EXPECT_EQ(big_flushes, 1);
  EXPECT_EQ(small_flushes, 1);
  EXPECT_EQ(arbiter.flush_requests(), 2u);
  arbiter.Detach(small);
  arbiter.Detach(big);
}

TEST_F(ArbiterPolicyTest, SliversAreNeverVictims) {
  MemoryArbiterOptions options = SmallBudget();
  options.min_victim_bytes = 1 * MiB;
  MemoryArbiter arbiter(options);
  int flushes = 0;
  std::vector<uint64_t> ids;
  // 18 slivers of 512 KiB = 9 MiB aggregate: over the watermark, but no
  // attachment is individually worth flushing.
  for (int i = 0; i < 18; ++i) {
    ids.push_back(arbiter.Attach(1 + i, [&] { ++flushes; }));
  }
  for (const uint64_t id : ids) {
    arbiter.UpdateUsage(id, 512 * KiB, /*wrote=*/true);
  }
  EXPECT_EQ(flushes, 0);
  EXPECT_GT(arbiter.GlobalPressure(), 0.0);  // pacing still applies
  for (const uint64_t id : ids) arbiter.Detach(id);
}

TEST_F(ArbiterPolicyTest, GlobalPressureRampsWatermarkToBudget) {
  MemoryArbiter arbiter(SmallBudget());
  const uint64_t a = arbiter.Attach(1, [] {});
  arbiter.UpdateUsage(a, 8 * MiB, /*wrote=*/false);
  EXPECT_EQ(arbiter.GlobalPressure(), 0.0);  // at the watermark: no pacing yet
  arbiter.UpdateUsage(a, 9 * MiB, /*wrote=*/false);
  EXPECT_NEAR(arbiter.GlobalPressure(), 0.5, 1e-9);
  arbiter.UpdateUsage(a, 10 * MiB, /*wrote=*/false);
  EXPECT_EQ(arbiter.GlobalPressure(), 1.0);
  arbiter.UpdateUsage(a, 2 * MiB, /*wrote=*/false);
  EXPECT_EQ(arbiter.GlobalPressure(), 0.0);
  arbiter.Detach(a);
}

TEST_F(ArbiterPolicyTest, DetachReleasesUsageAndResidencyTracksTenants) {
  MemoryArbiter arbiter(SmallBudget());
  const uint64_t t1 = arbiter.RegisterTenant("/store/a");
  const uint64_t t2 = arbiter.RegisterTenant("/store/b");
  EXPECT_NE(t1, 0u);
  EXPECT_NE(t1, t2);
  const uint64_t a1 = arbiter.Attach(t1, [] {});
  const uint64_t a2 = arbiter.Attach(t1, [] {});  // e.g. two shards
  const uint64_t b = arbiter.Attach(t2, [] {});
  arbiter.UpdateUsage(a1, 1 * MiB, /*wrote=*/true);
  arbiter.UpdateUsage(a2, 2 * MiB, /*wrote=*/true);
  arbiter.UpdateUsage(b, 4 * MiB, /*wrote=*/true);

  TenantResidency r1 = arbiter.Residency(t1);
  EXPECT_EQ(r1.name, "/store/a");
  EXPECT_EQ(r1.memtable_bytes, 3 * MiB);
  EXPECT_EQ(r1.attachments, 2);
  EXPECT_EQ(arbiter.TotalUsage(), 7 * MiB);

  const std::vector<TenantResidency> all = arbiter.AllResidency();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1].memtable_bytes, 4 * MiB);

  arbiter.Detach(a1);
  arbiter.Detach(a2);
  EXPECT_EQ(arbiter.TotalUsage(), 4 * MiB);
  EXPECT_EQ(arbiter.Residency(t1).attachments, 0);
  arbiter.UnregisterTenant(t1);
  arbiter.Detach(b);
  arbiter.UnregisterTenant(t2);
}

// --- manager-level integration ---

class ArbiterManagerTest : public ::testing::Test {
 protected:
  LsmioOptions Options() {
    LsmioOptions options;
    options.vfs = &fs_;
    options.memory_arbiter = &arbiter_;
    options.disable_cache = false;  // exercise the shared cache
    return options;
  }

  vfs::MemVfs fs_;
  MemoryArbiter arbiter_;
};

TEST_F(ArbiterManagerTest, CacheChargingSurvivesCloseAndReopen) {
  std::unique_ptr<Manager> manager;
  ASSERT_TRUE(Manager::Open(Options(), "/tenant", &manager).ok());
  const uint64_t first_id = manager->memory_tenant_id();
  ASSERT_NE(first_id, 0u);

  // Persist a table, then read it back so blocks land in the shared cache
  // charged to this tenant.
  for (int i = 0; i < 200; ++i) {
    const std::string k = "key" + std::to_string(i);
    ASSERT_TRUE(manager->Put(k, std::string(512, 'v')).ok());
  }
  ASSERT_TRUE(manager->WriteBarrier(BarrierMode::kSync).ok());
  std::string value;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(manager->Get("key" + std::to_string(i), &value).ok());
  }
  EXPECT_GT(arbiter_.Residency(first_id).cache_bytes, 0u);
  EXPECT_GT(manager->engine_stats().tenant_cache_bytes, 0u);

  // Close: the tenant unregisters and its shared-cache charge is purged.
  manager.reset();
  EXPECT_EQ(arbiter_.shared_cache()->OwnerCharge(first_id), 0u);
  EXPECT_EQ(arbiter_.TotalUsage(), 0u);  // attachments detached

  // Reopen: a fresh tenant id; reads re-charge under the new id only.
  ASSERT_TRUE(Manager::Open(Options(), "/tenant", &manager).ok());
  const uint64_t second_id = manager->memory_tenant_id();
  ASSERT_NE(second_id, 0u);
  EXPECT_NE(second_id, first_id);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(manager->Get("key" + std::to_string(i), &value).ok());
  }
  EXPECT_GT(arbiter_.Residency(second_id).cache_bytes, 0u);
  EXPECT_EQ(arbiter_.shared_cache()->OwnerCharge(first_id), 0u);
  manager.reset();
  EXPECT_EQ(arbiter_.shared_cache()->OwnerCharge(second_id), 0u);
}

TEST_F(ArbiterManagerTest, ForcedFlushOnColdStoreDoesNotBlockHotStore) {
  // Tight budget: the hot store's writes push aggregate usage over the
  // watermark, forcing flushes of the cold store. The cold store's forced
  // flush must never show up as a write stall on the hot store.
  MemoryArbiterOptions tight;
  tight.write_budget_bytes = 4 * MiB;
  tight.flush_watermark = 0.5;
  tight.min_victim_bytes = 16 * KiB;
  MemoryArbiter arbiter(tight);

  LsmioOptions options;
  options.vfs = &fs_;
  options.memory_arbiter = &arbiter;
  // Give the hot store a soft-pacing zone (graduated backpressure) so its
  // own flush lag paces it instead of hard-stalling: any stall observed
  // below would then be attributable to the arbiter.
  options.disable_compaction = false;
  options.max_write_buffer_number = 4;

  std::unique_ptr<Manager> cold;
  std::unique_ptr<Manager> hot;
  ASSERT_TRUE(Manager::Open(options, "/cold", &cold).ok());
  ASSERT_TRUE(Manager::Open(options, "/hot", &hot).ok());

  // Park ~1 MiB in the cold store, then go idle.
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(cold->Put("c" + std::to_string(i), std::string(4096, 'c')).ok());
  }

  // Hammer the hot store well past the 2 MiB watermark.
  for (int i = 0; i < 1024; ++i) {
    ASSERT_TRUE(hot->Put("h" + std::to_string(i), std::string(4096, 'h')).ok());
  }

  // The arbiter picked at least one victim, and the cold store took at
  // least one forced flush (it is the coldest eligible attachment).
  EXPECT_GE(arbiter.flush_requests(), 1u);
  ASSERT_TRUE(cold->WriteBarrier(BarrierMode::kSync).ok());
  ASSERT_TRUE(hot->WriteBarrier(BarrierMode::kSync).ok());
  EXPECT_GE(cold->engine_stats().arbiter_forced_flushes +
                hot->engine_stats().arbiter_forced_flushes,
            1u);

  // The hot store's group-commit leader was never parked on the cold
  // store's flush: no hard write stalls on the hot store.
  EXPECT_EQ(hot->engine_stats().write_stall_micros, 0u);
  EXPECT_TRUE(hot->Health().ok());
  EXPECT_TRUE(cold->Health().ok());

  // Residency surfaces the forced-flush attribution.
  uint64_t total_forced = 0;
  for (const TenantResidency& r : arbiter.AllResidency()) {
    total_forced += r.arbiter_forced_flushes;
  }
  EXPECT_EQ(total_forced, arbiter.flush_requests());
}

TEST_F(ArbiterManagerTest, PoolGaugesSurfaceThroughStats) {
  std::unique_ptr<Manager> manager;
  ASSERT_TRUE(Manager::Open(Options(), "/gauges", &manager).ok());
  ASSERT_TRUE(manager->Put("k", std::string(64 * 1024, 'v')).ok());
  const lsm::DbStats stats = manager->engine_stats();
  EXPECT_GT(stats.memtable_bytes, 0u);
  EXPECT_GT(stats.write_pool_usage_bytes, 0u);
  EXPECT_EQ(stats.write_pool_budget_bytes, MemoryArbiterOptions{}.write_budget_bytes);
}

TEST_F(ArbiterManagerTest, ShardedStoreAttachesPerShard) {
  LsmioOptions options = Options();
  options.num_shards = 4;
  std::unique_ptr<Manager> manager;
  ASSERT_TRUE(Manager::Open(options, "/sharded", &manager).ok());
  const uint64_t tid = manager->memory_tenant_id();
  EXPECT_EQ(arbiter_.Residency(tid).attachments, 4);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(manager->Put("k" + std::to_string(i), std::string(1024, 'v')).ok());
  }
  EXPECT_GT(arbiter_.Residency(tid).memtable_bytes, 0u);
  manager.reset();
  EXPECT_EQ(arbiter_.Residency(tid).attachments, 0);
  EXPECT_EQ(arbiter_.TotalUsage(), 0u);
}

}  // namespace
}  // namespace lsmio
