#include "core/manager.h"

#include <gtest/gtest.h>

#include "minimpi/minimpi.h"
#include "vfs/mem_vfs.h"

namespace lsmio {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  LsmioOptions Options() {
    LsmioOptions options;
    options.vfs = &fs_;
    return options;
  }

  void Open() { ASSERT_TRUE(Manager::Open(Options(), "/mgr", &manager_).ok()); }

  vfs::MemVfs fs_;
  std::unique_ptr<Manager> manager_;
};

TEST_F(ManagerTest, FactoryOpensStore) {
  Open();
  ASSERT_NE(manager_, nullptr);
}

TEST_F(ManagerTest, PutGetRoundTrip) {
  Open();
  ASSERT_TRUE(manager_->Put("key", "value").ok());
  std::string value;
  ASSERT_TRUE(manager_->Get("key", &value).ok());
  EXPECT_EQ(value, "value");
}

TEST_F(ManagerTest, TypedPuts) {
  Open();
  ASSERT_TRUE(manager_->PutUint64("count", 123456789012345ULL).ok());
  ASSERT_TRUE(manager_->PutDouble("pi", 3.14159265358979).ok());

  uint64_t count = 0;
  ASSERT_TRUE(manager_->GetUint64("count", &count).ok());
  EXPECT_EQ(count, 123456789012345ULL);
  double pi = 0;
  ASSERT_TRUE(manager_->GetDouble("pi", &pi).ok());
  EXPECT_DOUBLE_EQ(pi, 3.14159265358979);
}

TEST_F(ManagerTest, TypedGetRejectsWrongWidth) {
  Open();
  ASSERT_TRUE(manager_->Put("short", "abc").ok());
  uint64_t v = 0;
  EXPECT_TRUE(manager_->GetUint64("short", &v).IsCorruption());
}

TEST_F(ManagerTest, AppendAccumulates) {
  Open();
  ASSERT_TRUE(manager_->Append("trace", "a").ok());
  ASSERT_TRUE(manager_->Append("trace", "b").ok());
  std::string value;
  ASSERT_TRUE(manager_->Get("trace", &value).ok());
  EXPECT_EQ(value, "ab");
}

TEST_F(ManagerTest, DelRemoves) {
  Open();
  ASSERT_TRUE(manager_->Put("gone", "x").ok());
  ASSERT_TRUE(manager_->Del("gone").ok());
  std::string value;
  EXPECT_TRUE(manager_->Get("gone", &value).IsNotFound());
}

TEST_F(ManagerTest, CountersTrackOperations) {
  Open();
  ASSERT_TRUE(manager_->Put("a", "12345").ok());
  ASSERT_TRUE(manager_->Append("a", "678").ok());
  std::string value;
  ASSERT_TRUE(manager_->Get("a", &value).ok());
  ASSERT_TRUE(manager_->Del("a").ok());
  ASSERT_TRUE(manager_->WriteBarrier().ok());

  const ManagerCounters counters = manager_->counters();
  EXPECT_EQ(counters.puts, 1u);
  EXPECT_EQ(counters.appends, 1u);
  EXPECT_EQ(counters.gets, 1u);
  EXPECT_EQ(counters.dels, 1u);
  EXPECT_EQ(counters.write_barriers, 1u);
  EXPECT_EQ(counters.bytes_put, 5u + 3u);
  EXPECT_EQ(counters.bytes_got, 8u);
  EXPECT_EQ(counters.put_latency_us.count(), 1u);
}

TEST_F(ManagerTest, WriteBarrierModes) {
  Open();
  ASSERT_TRUE(manager_->Put("k", std::string(4096, 'v')).ok());
  ASSERT_TRUE(manager_->WriteBarrier(BarrierMode::kAsync).ok());
  ASSERT_TRUE(manager_->WriteBarrier(BarrierMode::kSync).ok());
  EXPECT_GE(manager_->engine_stats().memtable_flushes, 1u);
}

TEST_F(ManagerTest, LargeValuesThroughKvApi) {
  Open();
  const std::string big(8 * MiB, 'B');
  ASSERT_TRUE(manager_->Put("big", big).ok());
  ASSERT_TRUE(manager_->WriteBarrier().ok());
  std::string value;
  ASSERT_TRUE(manager_->Get("big", &value).ok());
  EXPECT_EQ(value.size(), big.size());
  EXPECT_EQ(value, big);
}

TEST(ManagerCollectiveTest, PutsRouteToOwnerRank) {
  // 4 ranks put keys in collective mode; after the fence, every key is
  // readable from its owner's store (and the data survived routing).
  vfs::MemVfs fs;
  constexpr int kRanks = 4;
  constexpr int kKeys = 64;

  minimpi::RunWorld(kRanks, [&fs](minimpi::Comm& comm) {
    LsmioOptions options;
    options.vfs = &fs;
    options.comm = &comm;
    options.collective_io = true;

    std::unique_ptr<Manager> manager;
    ASSERT_TRUE(Manager::Open(options, "/coll/rank" + std::to_string(comm.rank()),
                              &manager)
                    .ok());

    // Every rank writes its slice of the key space.
    for (int i = comm.rank(); i < kKeys; i += comm.size()) {
      ASSERT_TRUE(manager
                      ->Put("key" + std::to_string(i),
                            "value" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE(manager->CollectiveFence().ok());

    // After the fence, all keys owned by this rank are locally present.
    int found = 0;
    for (int i = 0; i < kKeys; ++i) {
      std::string value;
      if (manager->Get("key" + std::to_string(i), &value).ok()) {
        EXPECT_EQ(value, "value" + std::to_string(i));
        ++found;
      }
    }
    // Keys spread over ranks: each rank holds roughly kKeys/kRanks.
    EXPECT_GT(found, 0);
    const uint64_t total =
        comm.Allreduce(static_cast<uint64_t>(found), minimpi::ReduceOp::kSum);
    EXPECT_EQ(total, static_cast<uint64_t>(kKeys));
  });
}

TEST(ManagerCollectiveTest, FenceIsNoOpWithoutCollectiveMode) {
  vfs::MemVfs fs;
  LsmioOptions options;
  options.vfs = &fs;
  std::unique_ptr<Manager> manager;
  ASSERT_TRUE(Manager::Open(options, "/plain", &manager).ok());
  EXPECT_TRUE(manager->CollectiveFence().ok());
}

}  // namespace
}  // namespace lsmio
