// Multi-tenant memory-arbitration stress (DESIGN.md §15): many stores in
// one process share a MemoryArbiter whose write budget is 25% of what fixed
// per-store sizing would reserve, under heavily skewed traffic (a small hot
// set takes ~90% of the writes). The run must complete without unbounded
// memory growth (the OOM the arbiter exists to prevent) and without any
// store latching read-only, and every acked write must read back intact.
//
// Scale defaults stay CI-fast (24 tenants); the nightly workflow raises
// them with LSMIO_TENANTS=200 / LSMIO_STRESS_OPS. LSMIO_STRESS_THROUGHPUT=1
// additionally runs an uncapped baseline and asserts the hot tenants kept
// at least 80% of their uncapped throughput (wall-clock dependent, so it is
// opt-in rather than part of the default deterministic run).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "core/manager.h"
#include "core/memory_arbiter.h"
#include "vfs/mem_vfs.h"

namespace lsmio {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

// Fixed per-store sizing the arbiter replaces: this is what each store
// would reserve as its private memtable budget without arbitration.
constexpr uint64_t kPerStoreBuffer = 1 * MiB;

struct Fleet {
  vfs::MemVfs fs;
  std::unique_ptr<MemoryArbiter> arbiter;
  std::vector<std::unique_ptr<Manager>> managers;

  // Opens `tenants` stores; budgeted == true shares one arbiter at 25% of
  // the fixed sizing, budgeted == false gives every store its private
  // fixed-size buffer (the uncapped baseline).
  void Open(int tenants, bool budgeted) {
    if (budgeted) {
      MemoryArbiterOptions arb;
      arb.write_budget_bytes =
          std::max<uint64_t>(1 * MiB, tenants * kPerStoreBuffer / 4);
      arb.cache_budget_bytes = 8 * MiB;
      arb.min_victim_bytes = 32 * KiB;
      arbiter = std::make_unique<MemoryArbiter>(arb);
    }
    for (int i = 0; i < tenants; ++i) {
      LsmioOptions options;
      options.vfs = &fs;
      options.write_buffer_size = kPerStoreBuffer;
      // Soft-pacing zone so flush lag paces writers instead of stalling.
      options.disable_compaction = false;
      options.max_write_buffer_number = 4;
      if (budgeted) options.memory_arbiter = arbiter.get();
      std::unique_ptr<Manager> manager;
      ASSERT_TRUE(
          Manager::Open(options, "/stress/t" + std::to_string(i), &manager)
              .ok());
      managers.push_back(std::move(manager));
    }
  }

  void Close() {
    managers.clear();
    arbiter.reset();
  }
};

// Runs `ops` skewed puts across the fleet; returns wall micros spent on
// hot-tenant puts. Checks budget boundedness as it goes when capped.
uint64_t RunSkewedWrites(Fleet& fleet, int ops, uint64_t seed) {
  const int tenants = static_cast<int>(fleet.managers.size());
  const int hot = std::max(1, tenants / 10);
  const uint64_t budget =
      fleet.arbiter != nullptr ? fleet.arbiter->Budget() : 0;
  Rng rng(seed);
  uint64_t hot_micros = 0;
  const std::string value(4096, 'v');
  for (int op = 0; op < ops; ++op) {
    // 90% of traffic lands on the hot tenants.
    const bool is_hot = rng.Next() % 10 != 0;
    const int t = is_hot ? static_cast<int>(rng.Next() % hot)
                         : hot + static_cast<int>(rng.Next() % std::max(
                                                      1, tenants - hot));
    Manager* m = fleet.managers[t % tenants].get();
    const std::string key =
        "op" + std::to_string(op) + "k" + std::to_string(rng.Next() % 512);
    if (is_hot) {
      const auto start = std::chrono::steady_clock::now();
      EXPECT_TRUE(m->Put(key, value).ok());
      hot_micros += std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    } else {
      EXPECT_TRUE(m->Put(key, value).ok());
    }
    // Aggregate memtable residency must stay bounded near the budget: the
    // cap-and-pace machinery, not tenant count, bounds process memory.
    // (2x slack covers in-flight flushes and per-batch overshoot.)
    if (budget != 0 && op % 256 == 0) {
      EXPECT_LE(fleet.arbiter->TotalUsage(), 2 * budget)
          << "aggregate memtable usage escaped the budget at op " << op;
    }
  }
  return hot_micros;
}

TEST(MultiTenantStressTest, BudgetedFleetSurvivesSkewedTraffic) {
  const int tenants = EnvInt("LSMIO_TENANTS", 24);
  const int ops = EnvInt("LSMIO_STRESS_OPS", 6000);

  Fleet fleet;
  fleet.Open(tenants, /*budgeted=*/true);
  if (::testing::Test::HasFatalFailure()) return;

  RunSkewedWrites(fleet, ops, /*seed=*/0xC0FFEE);

  // No store latched read-only (an arbiter-forced flush that failed would
  // show up here), and every store still accepts writes.
  for (int t = 0; t < tenants; ++t) {
    Manager* m = fleet.managers[t].get();
    EXPECT_TRUE(m->Health().ok()) << "tenant " << t;
    EXPECT_TRUE(m->WriteBarrier(BarrierMode::kSync).ok()) << "tenant " << t;
    EXPECT_TRUE(m->Put("final" + std::to_string(t), "alive").ok());
  }

  // Writes read back intact through the budgeted fleet.
  std::string value;
  for (int t = 0; t < tenants; ++t) {
    ASSERT_TRUE(
        fleet.managers[t]->Get("final" + std::to_string(t), &value).ok());
    EXPECT_EQ(value, "alive");
  }

  // The arbiter actually arbitrated: under a 4x-overcommitted budget with
  // skewed traffic, victim picks must have happened.
  EXPECT_GT(fleet.arbiter->flush_requests(), 0u);

  // Residency attribution covers every registered tenant.
  const std::vector<TenantResidency> residency = fleet.arbiter->AllResidency();
  EXPECT_EQ(residency.size(), static_cast<size_t>(tenants));

  fleet.Close();
}

TEST(MultiTenantStressTest, HotTenantsKeepThroughputUnderBudget) {
  if (EnvInt("LSMIO_STRESS_THROUGHPUT", 0) == 0) {
    GTEST_SKIP() << "wall-clock comparison; set LSMIO_STRESS_THROUGHPUT=1";
  }
  const int tenants = EnvInt("LSMIO_TENANTS", 24);
  const int ops = EnvInt("LSMIO_STRESS_OPS", 6000);

  Fleet uncapped;
  uncapped.Open(tenants, /*budgeted=*/false);
  if (::testing::Test::HasFatalFailure()) return;
  const uint64_t baseline_micros =
      RunSkewedWrites(uncapped, ops, /*seed=*/0xBEEF);
  uncapped.Close();

  Fleet capped;
  capped.Open(tenants, /*budgeted=*/true);
  if (::testing::Test::HasFatalFailure()) return;
  const uint64_t capped_micros = RunSkewedWrites(capped, ops, /*seed=*/0xBEEF);
  capped.Close();

  // Hot tenants must keep >= 80% of uncapped throughput: the arbiter
  // flushes cold tenants and paces globally, it does not starve the hot
  // set. Time-per-op is the inverse of throughput, so capped time may be
  // at most 1/0.8 = 1.25x the baseline.
  EXPECT_LE(static_cast<double>(capped_micros),
            1.25 * static_cast<double>(baseline_micros))
      << "hot-tenant puts took " << capped_micros << "us capped vs "
      << baseline_micros << "us uncapped";
}

}  // namespace
}  // namespace lsmio
