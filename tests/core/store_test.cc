#include "core/store.h"

#include <gtest/gtest.h>

#include "vfs/mem_vfs.h"

namespace lsmio {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  LsmioOptions PaperOptions() {
    LsmioOptions options;  // defaults are the paper's checkpoint config
    options.vfs = &fs_;
    return options;
  }

  void Open(const LsmioOptions& options) {
    ASSERT_TRUE(OpenLsmStore(options, "/store", &store_).ok());
  }

  vfs::MemVfs fs_;
  std::unique_ptr<Store> store_;
};

TEST_F(StoreTest, PutGetDel) {
  Open(PaperOptions());
  ASSERT_TRUE(store_->Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE(store_->Del("k").ok());
  EXPECT_TRUE(store_->Get("k", &value).IsNotFound());
}

TEST_F(StoreTest, AppendCreatesAndExtends) {
  Open(PaperOptions());
  ASSERT_TRUE(store_->Append("log", "first").ok());
  ASSERT_TRUE(store_->Append("log", "|second").ok());
  std::string value;
  ASSERT_TRUE(store_->Get("log", &value).ok());
  EXPECT_EQ(value, "first|second");
}

TEST_F(StoreTest, WriteBarrierFlushesMemtable) {
  Open(PaperOptions());
  ASSERT_TRUE(store_->Put("k", std::string(1024, 'v')).ok());
  ASSERT_TRUE(store_->WriteBarrier(BarrierMode::kSync).ok());
  EXPECT_GE(store_->EngineStats().memtable_flushes, 1u);
  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
}

TEST_F(StoreTest, AsyncBarrierStillFlushesEventually) {
  Open(PaperOptions());
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->WriteBarrier(BarrierMode::kAsync).ok());
  // A sync barrier afterwards guarantees completion.
  ASSERT_TRUE(store_->WriteBarrier(BarrierMode::kSync).ok());
  EXPECT_GE(store_->EngineStats().memtable_flushes, 1u);
}

TEST_F(StoreTest, BatchModeIsNoOpWithoutFlag) {
  Open(PaperOptions());
  EXPECT_TRUE(store_->StartBatch().ok());  // RocksDB mode: batching not needed
  ASSERT_TRUE(store_->Put("k", "v").ok());
  EXPECT_TRUE(store_->StopBatch().ok());
  std::string value;
  EXPECT_TRUE(store_->Get("k", &value).ok());
}

TEST_F(StoreTest, BatchModeDefersWritesUntilStop) {
  LsmioOptions options = PaperOptions();
  options.use_write_batch = true;  // LevelDB-style mode (paper §3.1.2)
  Open(options);

  ASSERT_TRUE(store_->StartBatch().ok());
  ASSERT_TRUE(store_->Put("k", "v").ok());
  std::string value;
  EXPECT_TRUE(store_->Get("k", &value).IsNotFound());  // not yet applied
  ASSERT_TRUE(store_->StopBatch().ok());
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
}

TEST_F(StoreTest, BatchModeDoubleStartFails) {
  LsmioOptions options = PaperOptions();
  options.use_write_batch = true;
  Open(options);
  ASSERT_TRUE(store_->StartBatch().ok());
  EXPECT_TRUE(store_->StartBatch().IsBusy());
  ASSERT_TRUE(store_->StopBatch().ok());
  EXPECT_TRUE(store_->StopBatch().IsBusy());
}

TEST_F(StoreTest, AppendInsideBatchSeesBatchedPut) {
  LsmioOptions options = PaperOptions();
  options.use_write_batch = true;
  Open(options);

  ASSERT_TRUE(store_->StartBatch().ok());
  ASSERT_TRUE(store_->Put("log", "first").ok());
  // The engine cannot see the batched put yet; Append must consult the
  // open batch, not read a stale (absent) value.
  ASSERT_TRUE(store_->Append("log", "|second").ok());
  ASSERT_TRUE(store_->StopBatch().ok());

  std::string value;
  ASSERT_TRUE(store_->Get("log", &value).ok());
  EXPECT_EQ(value, "first|second");
}

TEST_F(StoreTest, AppendInsideBatchExtendsAppliedValue) {
  LsmioOptions options = PaperOptions();
  options.use_write_batch = true;
  Open(options);

  ASSERT_TRUE(store_->Put("log", "base").ok());  // applied outside any batch
  ASSERT_TRUE(store_->StartBatch().ok());
  ASSERT_TRUE(store_->Append("log", "+batched").ok());
  ASSERT_TRUE(store_->Append("log", "+twice").ok());
  ASSERT_TRUE(store_->StopBatch().ok());

  std::string value;
  ASSERT_TRUE(store_->Get("log", &value).ok());
  EXPECT_EQ(value, "base+batched+twice");
}

TEST_F(StoreTest, AppendInsideBatchAfterBatchedDelStartsFresh) {
  LsmioOptions options = PaperOptions();
  options.use_write_batch = true;
  Open(options);

  ASSERT_TRUE(store_->Put("log", "stale").ok());
  ASSERT_TRUE(store_->StartBatch().ok());
  ASSERT_TRUE(store_->Del("log").ok());
  ASSERT_TRUE(store_->Append("log", "fresh").ok());
  ASSERT_TRUE(store_->StopBatch().ok());

  std::string value;
  ASSERT_TRUE(store_->Get("log", &value).ok());
  EXPECT_EQ(value, "fresh");
}

TEST_F(StoreTest, WriteBarrierAppliesOpenBatch) {
  LsmioOptions options = PaperOptions();
  options.use_write_batch = true;
  Open(options);
  ASSERT_TRUE(store_->StartBatch().ok());
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->WriteBarrier(BarrierMode::kSync).ok());
  std::string value;
  ASSERT_TRUE(store_->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
}

TEST_F(StoreTest, IteratorSeesAllKeys) {
  Open(PaperOptions());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_->Put("key" + std::to_string(i), "v").ok());
  }
  std::unique_ptr<lsm::Iterator> iter(store_->NewIterator());
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++count;
  EXPECT_EQ(count, 10);
}

TEST_F(StoreTest, DataSurvivesReopenAfterBarrier) {
  {
    Open(PaperOptions());
    ASSERT_TRUE(store_->Put("persist", "yes").ok());
    ASSERT_TRUE(store_->WriteBarrier(BarrierMode::kSync).ok());
    store_.reset();
  }
  Open(PaperOptions());
  std::string value;
  ASSERT_TRUE(store_->Get("persist", &value).ok());
  EXPECT_EQ(value, "yes");
}

}  // namespace
}  // namespace lsmio
