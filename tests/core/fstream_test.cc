#include "core/fstream.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "vfs/mem_vfs.h"

namespace lsmio {
namespace {

// FStreamApi holds process-global state; tests run it per-fixture.
class FStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LsmioOptions options;
    options.vfs = &fs_;
    options.fstream_chunk_size = 4096;  // small chunks exercise boundaries
    ASSERT_TRUE(FStreamApi::Initialize(options, "/fstream-store").ok());
  }

  void TearDown() override { ASSERT_TRUE(FStreamApi::Cleanup().ok()); }

  vfs::MemVfs fs_;
};

TEST_F(FStreamTest, WriteThenReadBack) {
  {
    FStream out("hello.txt", std::ios::out);
    ASSERT_TRUE(out.good());
    out << "hello, checkpoint world";
    out.flush();
    ASSERT_TRUE(out.good());
  }
  FStream in("hello.txt", std::ios::in);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello, checkpoint world");
}

TEST_F(FStreamTest, OpenMissingFileForReadFails) {
  FStream in("missing.txt", std::ios::in);
  EXPECT_TRUE(in.fail());
  EXPECT_FALSE(in.is_open());
}

TEST_F(FStreamTest, TruncateModeDiscardsOldContents) {
  {
    FStream out("f", std::ios::out);
    out << "long old contents here";
  }
  {
    FStream out("f", std::ios::out | std::ios::trunc);
    out << "new";
  }
  FStream in("f", std::ios::in);
  EXPECT_EQ(in.size(), 3u);
  std::string contents;
  in >> contents;
  EXPECT_EQ(contents, "new");
}

TEST_F(FStreamTest, SeekpTellpRoundTrip) {
  FStream stream("seek", std::ios::in | std::ios::out);
  ASSERT_TRUE(stream.good());
  stream << "0123456789";
  EXPECT_EQ(static_cast<long>(stream.tellp()), 10);
  stream.seekp(4);
  EXPECT_EQ(static_cast<long>(stream.tellp()), 4);
  stream << "XY";
  stream.flush();

  stream.seekg(0);
  std::string contents;
  stream >> contents;
  EXPECT_EQ(contents, "0123XY6789");
}

TEST_F(FStreamTest, SeekRelativeAndFromEnd) {
  FStream stream("rel", std::ios::in | std::ios::out);
  stream << "abcdefgh";
  stream.flush();
  stream.seekg(-3, std::ios::end);
  std::string tail;
  tail.resize(3);
  stream.read(tail.data(), 3);
  EXPECT_EQ(tail, "fgh");

  stream.seekg(2, std::ios::beg);
  stream.seekg(2, std::ios::cur);
  char c;
  stream.get(c);
  EXPECT_EQ(c, 'e');
}

TEST_F(FStreamTest, BinaryDataAcrossChunkBoundaries) {
  // 3.5 chunks of binary data through the 4 KiB chunk size.
  std::string payload(14336, '\0');
  Rng rng(8);
  rng.Fill(payload.data(), payload.size());
  {
    FStream out("bin", std::ios::out | std::ios::binary);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    ASSERT_TRUE(out.good());
  }
  FStream in("bin", std::ios::in | std::ios::binary);
  EXPECT_EQ(in.size(), payload.size());
  std::string read_back(payload.size(), '\0');
  in.read(read_back.data(), static_cast<std::streamsize>(read_back.size()));
  EXPECT_EQ(static_cast<size_t>(in.gcount()), payload.size());
  EXPECT_EQ(read_back, payload);
}

TEST_F(FStreamTest, AppendMode) {
  {
    FStream out("log", std::ios::out);
    out << "first";
  }
  {
    FStream out("log", std::ios::out | std::ios::app);
    out << "+second";
  }
  FStream in("log", std::ios::in);
  std::string contents;
  in >> contents;
  EXPECT_EQ(contents, "first+second");
}

TEST_F(FStreamTest, RdbufIsAccessible) {
  FStream out("rb", std::ios::out);
  EXPECT_NE(out.rdbuf(), nullptr);  // paper Table 3 lists rdbuf
}

TEST_F(FStreamTest, WriteBarrierFlushesToStorage) {
  {
    FStream out("durable", std::ios::out);
    out << std::string(10000, 'd');
  }
  ASSERT_TRUE(FStreamApi::WriteBarrier().ok());
  EXPECT_GE(FStreamApi::manager()->engine_stats().memtable_flushes, 1u);
}

TEST_F(FStreamTest, RemoveAndExists) {
  {
    FStream out("temp", std::ios::out);
    out << "x";
  }
  EXPECT_TRUE(FStreamExists("temp"));
  ASSERT_TRUE(FStreamRemove("temp").ok());
  EXPECT_FALSE(FStreamExists("temp"));
  EXPECT_TRUE(FStreamRemove("temp").IsNotFound());
}

TEST_F(FStreamTest, ManyFilesCoexist) {
  for (int i = 0; i < 20; ++i) {
    FStream out("multi" + std::to_string(i), std::ios::out);
    out << "contents-" << i;
  }
  for (int i = 0; i < 20; ++i) {
    FStream in("multi" + std::to_string(i), std::ios::in);
    std::string contents;
    in >> contents;
    EXPECT_EQ(contents, "contents-" + std::to_string(i));
  }
}

TEST_F(FStreamTest, DoubleInitializeFails) {
  LsmioOptions options;
  options.vfs = &fs_;
  EXPECT_TRUE(FStreamApi::Initialize(options, "/other").IsBusy());
}

TEST_F(FStreamTest, StreamWithoutInitializeFails) {
  ASSERT_TRUE(FStreamApi::Cleanup().ok());
  {
    FStream out("orphan", std::ios::out);
    EXPECT_TRUE(out.fail());
  }
  // Restore for TearDown.
  LsmioOptions options;
  options.vfs = &fs_;
  ASSERT_TRUE(FStreamApi::Initialize(options, "/fstream-store2").ok());
}

}  // namespace
}  // namespace lsmio
