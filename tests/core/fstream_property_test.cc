// Property test: a random sequence of stream operations applied to both an
// LSMIO FStream and a reference model must produce identical observable
// behaviour, across FStream chunk sizes (so chunk-boundary logic is
// exercised at every alignment).
//
// The reference models std::fstream semantics: one joint file position
// shared by reads and writes (std::stringstream, by contrast, keeps
// independent get/put positions).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/random.h"
#include "core/fstream.h"
#include "vfs/mem_vfs.h"

namespace lsmio {
namespace {

// Joint-position file model.
struct RefFile {
  std::string data;
  uint64_t pos = 0;

  void Write(const std::string& blob) {
    if (data.size() < pos + blob.size()) data.resize(pos + blob.size(), '\0');
    std::memcpy(data.data() + pos, blob.data(), blob.size());
    pos += blob.size();
  }
  std::string Read(uint64_t n) {
    const uint64_t avail = pos < data.size() ? data.size() - pos : 0;
    const uint64_t take = std::min(n, avail);
    std::string out = data.substr(static_cast<size_t>(pos), static_cast<size_t>(take));
    pos += take;
    return out;
  }
};

class FStreamPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    LsmioOptions options;
    options.vfs = &fs_;
    options.fstream_chunk_size = GetParam();
    ASSERT_TRUE(FStreamApi::Initialize(options, "/prop-store").ok());
  }
  void TearDown() override { ASSERT_TRUE(FStreamApi::Cleanup().ok()); }

  vfs::MemVfs fs_;
};

TEST_P(FStreamPropertyTest, RandomOpsMatchJointPositionReference) {
  Rng rng(0xf00d + GetParam());

  FStream stream("prop.bin", std::ios::in | std::ios::out | std::ios::trunc);
  ASSERT_TRUE(stream.good());
  RefFile reference;

  constexpr int kOps = 400;
  for (int op = 0; op < kOps; ++op) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 45) {
      // Write a random blob at the current position.
      std::string blob(1 + rng.Uniform(3000), '\0');
      rng.Fill(blob.data(), blob.size());
      stream.write(blob.data(), static_cast<std::streamsize>(blob.size()));
      ASSERT_TRUE(stream.good()) << "op " << op;
      reference.Write(blob);
    } else if (dice < 70 && !reference.data.empty()) {
      // Seek to a random spot (joint position).
      const uint64_t target = rng.Uniform(reference.data.size() + 1);
      stream.seekp(static_cast<std::streamoff>(target));
      ASSERT_EQ(static_cast<uint64_t>(std::streamoff(stream.tellp())), target)
          << "op " << op;
      reference.pos = target;
    } else if (dice < 90 && !reference.data.empty()) {
      // Read up to 4 KiB from the current position.
      const uint64_t want = 1 + rng.Uniform(4096);
      std::string got(want, '\0');
      stream.read(got.data(), static_cast<std::streamsize>(want));
      got.resize(static_cast<size_t>(stream.gcount()));
      stream.clear();  // short reads set eof
      const std::string expected = reference.Read(want);
      ASSERT_EQ(got, expected) << "op " << op;
      // Joint position: make the stream's put view match what we consumed.
      stream.seekg(static_cast<std::streamoff>(reference.pos));
    } else {
      stream.flush();
      ASSERT_TRUE(stream.good()) << "op " << op;
    }
  }

  // Final full-content comparison.
  stream.flush();
  EXPECT_EQ(stream.size(), reference.data.size());
  stream.clear();
  stream.seekg(0);
  std::string contents(reference.data.size(), '\0');
  stream.read(contents.data(), static_cast<std::streamsize>(contents.size()));
  EXPECT_EQ(static_cast<size_t>(stream.gcount()), reference.data.size());
  EXPECT_EQ(contents, reference.data);
}

TEST_P(FStreamPropertyTest, PersistenceAcrossReopenMatchesReference) {
  Rng rng(0xbeef + GetParam());
  std::string expected;
  {
    FStream out("persist.bin", std::ios::out | std::ios::binary);
    for (int i = 0; i < 50; ++i) {
      std::string blob(1 + rng.Uniform(2000), '\0');
      rng.Fill(blob.data(), blob.size());
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
      expected += blob;
    }
  }
  ASSERT_TRUE(FStreamApi::WriteBarrier().ok());

  FStream in("persist.bin", std::ios::in | std::ios::binary);
  ASSERT_TRUE(in.good());
  EXPECT_EQ(in.size(), expected.size());
  std::string contents(expected.size(), '\0');
  in.read(contents.data(), static_cast<std::streamsize>(contents.size()));
  EXPECT_EQ(static_cast<size_t>(in.gcount()), expected.size());
  EXPECT_EQ(contents, expected);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, FStreamPropertyTest,
                         ::testing::Values(64, 257, 4096, 65536),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Chunk" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lsmio
