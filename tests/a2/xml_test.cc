#include "a2/xml.h"

#include <gtest/gtest.h>

namespace lsmio::a2::xml {
namespace {

TEST(XmlTest, SimpleElement) {
  auto root = Parse("<root/>");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(root.value()->name, "root");
  EXPECT_TRUE(root.value()->children.empty());
}

TEST(XmlTest, Attributes) {
  auto root = Parse(R"(<engine type="BPLite" mode="async"/>)");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->Attr("type"), "BPLite");
  EXPECT_EQ(root.value()->Attr("mode"), "async");
  EXPECT_EQ(root.value()->Attr("missing"), "");
}

TEST(XmlTest, NestedElements) {
  auto root = Parse(R"(
    <adios-config>
      <io name="checkpoint">
        <engine type="LsmioPlugin">
          <parameter key="BufferChunkSize" value="32MB"/>
          <parameter key="Sync" value="false"/>
        </engine>
      </io>
      <io name="other"><engine type="BPLite"/></io>
    </adios-config>)");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  const Element& config = *root.value();
  EXPECT_EQ(config.name, "adios-config");
  ASSERT_EQ(config.Children("io").size(), 2u);

  const Element* io = config.Children("io")[0];
  EXPECT_EQ(io->Attr("name"), "checkpoint");
  const Element* engine = io->Child("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->Attr("type"), "LsmioPlugin");
  ASSERT_EQ(engine->Children("parameter").size(), 2u);
  EXPECT_EQ(engine->Children("parameter")[0]->Attr("key"), "BufferChunkSize");
  EXPECT_EQ(engine->Children("parameter")[0]->Attr("value"), "32MB");
}

TEST(XmlTest, CommentsAndDeclarationsSkipped) {
  auto root = Parse(R"(<?xml version="1.0"?>
    <!-- a comment -->
    <root><!-- inner --><child/></root>)");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(root.value()->children.size(), 1u);
  EXPECT_EQ(root.value()->children[0]->name, "child");
}

TEST(XmlTest, TextContentIgnored) {
  auto root = Parse("<root>some text <child/> more text</root>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->children.size(), 1u);
}

TEST(XmlTest, MismatchedClosingTagFails) {
  EXPECT_FALSE(Parse("<a><b></a></b>").ok());
}

TEST(XmlTest, UnterminatedFails) {
  EXPECT_FALSE(Parse("<a><b/>").ok());
  EXPECT_FALSE(Parse("<a attr=\"x").ok());
  EXPECT_FALSE(Parse("<").ok());
}

TEST(XmlTest, MissingQuoteFails) {
  EXPECT_FALSE(Parse("<a k=v/>").ok());
}

}  // namespace
}  // namespace lsmio::a2::xml
