#include "a2/a2.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "vfs/mem_vfs.h"
#include "vfs/trace.h"
#include "vfs/trace_vfs.h"

namespace lsmio::a2 {
namespace {

class A2Test : public ::testing::Test {
 protected:
  vfs::MemVfs fs_;
};

TEST_F(A2Test, DefineAndInquireVariable) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("test");
  Variable* var = io.DefineVariable("v", 100, 10, 20, 8);
  ASSERT_NE(var, nullptr);
  EXPECT_EQ(io.InquireVariable("v"), var);
  EXPECT_EQ(io.InquireVariable("nope"), nullptr);
  EXPECT_EQ(var->global_count(), 100u);
  EXPECT_EQ(var->offset(), 10u);
  EXPECT_EQ(var->count(), 20u);
  var->SetSelection(0, 50);
  EXPECT_EQ(var->count(), 50u);
}

TEST_F(A2Test, DeclareIOIsIdempotent) {
  Adios adios(fs_);
  IO& a = adios.DeclareIO("x");
  IO& b = adios.DeclareIO("x");
  EXPECT_EQ(&a, &b);
}

TEST_F(A2Test, WriteThenReadSingleRank) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  Variable* var = io.DefineVariable("field", 1000, 0, 1000, 8);

  std::string data(8000, '\0');
  Rng rng(4);
  rng.Fill(data.data(), data.size());

  auto writer = io.Open("/out.bp", Mode::kWrite);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer.value()->Put(*var, data.data(), PutMode::kDeferred).ok());
  ASSERT_TRUE(writer.value()->PerformPuts().ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto reader = io.Open("/out.bp", Mode::kRead);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::string out(8000, '\0');
  ASSERT_TRUE(reader.value()->Get(*var, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST_F(A2Test, SyncPutAllowsBufferReuse) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  Variable* var = io.DefineVariable("v", 16, 0, 8, 4);

  auto writer = io.Open("/sync.bp", Mode::kWrite).value();
  std::string buffer(32, 'A');
  ASSERT_TRUE(writer->Put(*var, buffer.data(), PutMode::kSync).ok());
  // Reuse the same buffer for a different selection.
  std::fill(buffer.begin(), buffer.end(), 'B');
  var->SetSelection(8, 8);
  ASSERT_TRUE(writer->Put(*var, buffer.data(), PutMode::kSync).ok());
  ASSERT_TRUE(writer->Close().ok());

  var->SetSelection(0, 16);
  auto reader = io.Open("/sync.bp", Mode::kRead).value();
  std::string out(64, '\0');
  ASSERT_TRUE(reader->Get(*var, out.data()).ok());
  EXPECT_EQ(out.substr(0, 32), std::string(32, 'A'));
  EXPECT_EQ(out.substr(32), std::string(32, 'B'));
}

TEST_F(A2Test, MultiWriterSubfilesAssembleOnRead) {
  constexpr int kRanks = 4;
  constexpr uint64_t kPerRank = 250;
  // Each "rank" writes its slab through its own Adios instance.
  for (int r = 0; r < kRanks; ++r) {
    Adios adios(fs_, "", r, kRanks);
    IO& io = adios.DeclareIO("ckpt");
    Variable* var = io.DefineVariable("field", kRanks * kPerRank,
                                      static_cast<uint64_t>(r) * kPerRank,
                                      kPerRank, 4);
    auto writer = io.Open("/multi.bp", Mode::kWrite).value();
    const std::string payload(kPerRank * 4, static_cast<char>('a' + r));
    ASSERT_TRUE(writer->Put(*var, payload.data(), PutMode::kDeferred).ok());
    ASSERT_TRUE(writer->PerformPuts().ok());
    ASSERT_TRUE(writer->Close().ok());
  }

  // A reader assembles the full array across subfiles.
  Adios adios(fs_);
  IO& io = adios.DeclareIO("read");
  Variable* var = io.DefineVariable("field", kRanks * kPerRank, 0,
                                    kRanks * kPerRank, 4);
  auto reader = io.Open("/multi.bp", Mode::kRead).value();
  std::string out(kRanks * kPerRank * 4, '\0');
  ASSERT_TRUE(reader->Get(*var, out.data()).ok());
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(out[static_cast<size_t>(r) * kPerRank * 4], 'a' + r) << r;
  }

  // Partial cross-subfile read.
  var->SetSelection(kPerRank - 10, 20);
  std::string partial(20 * 4, '\0');
  ASSERT_TRUE(reader->Get(*var, partial.data()).ok());
  EXPECT_EQ(partial.substr(0, 40), std::string(40, 'a'));
  EXPECT_EQ(partial.substr(40), std::string(40, 'b'));
}

TEST_F(A2Test, GetUnknownVariableFails) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  Variable* var = io.DefineVariable("v", 8, 0, 8, 1);
  auto writer = io.Open("/g.bp", Mode::kWrite).value();
  ASSERT_TRUE(writer->Put(*var, "12345678", PutMode::kSync).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = io.Open("/g.bp", Mode::kRead).value();
  Variable ghost("ghost", 8, 0, 8, 1);
  std::string out(8, '\0');
  EXPECT_TRUE(reader->Get(ghost, out.data()).IsNotFound());
}

TEST_F(A2Test, UncoveredSelectionFails) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  Variable* var = io.DefineVariable("v", 100, 0, 50, 1);
  auto writer = io.Open("/u.bp", Mode::kWrite).value();
  ASSERT_TRUE(writer->Put(*var, std::string(50, 'x').data(), PutMode::kSync).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = io.Open("/u.bp", Mode::kRead).value();
  var->SetSelection(0, 100);  // second half was never written
  std::string out(100, '\0');
  EXPECT_TRUE(reader->Get(*var, out.data()).IsNotFound());
}

TEST_F(A2Test, ReadOnMissingPathFails) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  EXPECT_FALSE(io.Open("/does-not-exist.bp", Mode::kRead).ok());
}

TEST_F(A2Test, WrongModeOperationsFail) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  Variable* var = io.DefineVariable("v", 8, 0, 8, 1);

  auto writer = io.Open("/m.bp", Mode::kWrite).value();
  std::string out(8, '\0');
  EXPECT_TRUE(writer->Get(*var, out.data()).IsInvalidArgument());
  ASSERT_TRUE(writer->Put(*var, "abcdefgh", PutMode::kSync).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = io.Open("/m.bp", Mode::kRead).value();
  EXPECT_TRUE(reader->Put(*var, "abcdefgh", PutMode::kSync).IsInvalidArgument());
  EXPECT_TRUE(reader->PerformPuts().IsInvalidArgument());
}

TEST_F(A2Test, CorruptIndexDetectedOnOpen) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  Variable* var = io.DefineVariable("v", 8, 0, 8, 1);
  auto writer = io.Open("/c.bp", Mode::kWrite).value();
  ASSERT_TRUE(writer->Put(*var, "abcdefgh", PutMode::kSync).ok());
  ASSERT_TRUE(writer->Close().ok());

  // Corrupt the index magic.
  uint64_t size = 0;
  ASSERT_TRUE(fs_.GetFileSize("/c.bp/idx.0", &size).ok());
  std::unique_ptr<vfs::FileHandle> handle;
  ASSERT_TRUE(fs_.OpenFileHandle("/c.bp/idx.0", false, {}, &handle).ok());
  ASSERT_TRUE(handle->WriteAt(size - 1, "X").ok());

  EXPECT_TRUE(io.Open("/c.bp", Mode::kRead).status().IsCorruption());
}

TEST_F(A2Test, TruncatedIndexDetected) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  Variable* var = io.DefineVariable("v", 8, 0, 8, 1);
  auto writer = io.Open("/t.bp", Mode::kWrite).value();
  ASSERT_TRUE(writer->Put(*var, "abcdefgh", PutMode::kSync).ok());
  ASSERT_TRUE(writer->Close().ok());

  // Keep the trailer (count+magic) but destroy a record byte before it.
  uint64_t size = 0;
  ASSERT_TRUE(fs_.GetFileSize("/t.bp/idx.0", &size).ok());
  std::unique_ptr<vfs::FileHandle> handle;
  ASSERT_TRUE(fs_.OpenFileHandle("/t.bp/idx.0", false, {}, &handle).ok());
  // Overwrite the name-length varint with a huge value.
  ASSERT_TRUE(handle->WriteAt(0, "\xff").ok());
  EXPECT_FALSE(io.Open("/t.bp", Mode::kRead).ok());
}

TEST_F(A2Test, CloseIsIdempotentAndFlushesDeferredPuts) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  Variable* var = io.DefineVariable("v", 4, 0, 4, 1);
  auto writer = io.Open("/i.bp", Mode::kWrite).value();
  // Deferred put never explicitly performed: Close must drain it.
  const std::string data = "wxyz";
  ASSERT_TRUE(writer->Put(*var, data.data(), PutMode::kDeferred).ok());
  ASSERT_TRUE(writer->Close().ok());
  ASSERT_TRUE(writer->Close().ok());  // second close is a no-op

  auto reader = io.Open("/i.bp", Mode::kRead).value();
  std::string out(4, '\0');
  ASSERT_TRUE(reader->Get(*var, out.data()).ok());
  EXPECT_EQ(out, "wxyz");
}

TEST_F(A2Test, XmlConfigSelectsEngineAndParameters) {
  const std::string config = R"(
    <adios-config>
      <io name="checkpoint">
        <engine type="BPLite">
          <parameter key="BufferChunkSize" value="64K"/>
        </engine>
      </io>
    </adios-config>)";
  Adios adios(fs_, config);
  IO& io = adios.DeclareIO("checkpoint");
  EXPECT_EQ(io.engine_type(), "BPLite");
  EXPECT_EQ(io.ParameterBytes("BufferChunkSize", 0), 64 * KiB);

  // IOs not named in the config keep defaults.
  IO& other = adios.DeclareIO("other");
  EXPECT_EQ(other.ParameterBytes("BufferChunkSize", 7), 7u);
}

TEST_F(A2Test, UnknownEngineTypeFails) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  io.SetEngine("NoSuchEngine");
  EXPECT_TRUE(io.Open("/x.bp", Mode::kWrite).status().IsInvalidArgument());
}

TEST_F(A2Test, PluginRegistryRoundTrip) {
  EXPECT_FALSE(IsEngineRegistered("TestPlugin"));
  RegisterEngine("TestPlugin", [](IO&, const std::string&, Mode)
                     -> Result<std::unique_ptr<Engine>> {
    return Status::NotSupported("test plugin stub");
  });
  EXPECT_TRUE(IsEngineRegistered("TestPlugin"));

  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  io.SetEngine("TestPlugin");
  EXPECT_TRUE(io.Open("/p", Mode::kWrite).status().IsNotSupported());
}

TEST_F(A2Test, StatsAreTracked) {
  Adios adios(fs_);
  IO& io = adios.DeclareIO("ckpt");
  Variable* var = io.DefineVariable("v", 100, 0, 100, 4);
  auto writer = io.Open("/s.bp", Mode::kWrite).value();
  const std::string data(400, 'd');
  ASSERT_TRUE(writer->Put(*var, data.data(), PutMode::kDeferred).ok());
  ASSERT_TRUE(writer->PerformPuts().ok());
  EXPECT_EQ(writer->stats().puts, 1u);
  EXPECT_EQ(writer->stats().bytes_put, 400u);
  EXPECT_EQ(writer->stats().perform_puts_calls, 1u);
  ASSERT_TRUE(writer->Close().ok());
}

TEST_F(A2Test, SubfileWritesAreAppendOnly) {
  // The property the benchmarks rely on: a BPLite writer's data subfile
  // receives only sequential appends (trace offsets strictly increase).
  vfs::TraceContext ctx(1);
  vfs::TraceVfs traced(fs_, ctx, 0);
  Adios adios(traced);
  IO& io = adios.DeclareIO("ckpt");
  io.SetParameter("BufferChunkSize", "64K");
  Variable* var = io.DefineVariable("v", 1 << 16, 0, 1 << 16, 4);

  auto writer = io.Open("/seq.bp", Mode::kWrite).value();
  std::string data(1 << 18, 'q');
  for (int step = 0; step < 4; ++step) {
    ASSERT_TRUE(writer->Put(*var, data.data(), PutMode::kDeferred).ok());
    ASSERT_TRUE(writer->PerformPuts().ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  uint64_t last_end = 0;
  int data_writes = 0;
  for (const auto& op : ctx.TraceForRank(0).ops) {
    if (op.kind != vfs::IoOpKind::kWrite) continue;
    const auto& path = ctx.PathOf(op.file);
    if (path.find("/data.") == std::string::npos) continue;
    EXPECT_EQ(op.offset, last_end) << "non-append write to subfile";
    last_end = op.offset + op.size;
    ++data_writes;
  }
  EXPECT_GT(data_writes, 4);  // several 64K chunk flushes
}

}  // namespace
}  // namespace lsmio::a2
