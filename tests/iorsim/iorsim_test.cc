// Integration tests of the full benchmark pipeline: real library code ->
// trace -> simulated Lustre -> bandwidth, checking the relationships the
// paper's figures are built from.
#include "iorsim/iorsim.h"

#include <gtest/gtest.h>

namespace lsmio::iorsim {
namespace {

pfs::SimOptions DefaultSim(int stripe_count = 4, uint64_t stripe_size = 64 * KiB) {
  pfs::SimOptions options;
  options.stripe.stripe_count = stripe_count;
  options.stripe.stripe_size = stripe_size;
  return options;
}

Workload SmallWorkload(Api api, int tasks) {
  Workload workload;
  workload.api = api;
  workload.num_tasks = tasks;
  workload.block_size = 256 * KiB;
  workload.transfer_size = 64 * KiB;
  workload.segments = 4;
  return workload;
}

// Checkpoint-sized workload (8 MiB/task): fixed per-file costs amortize, so
// engine orderings reflect steady-state behaviour like the paper's runs.
Workload MediumWorkload(Api api, int tasks) {
  Workload workload;
  workload.api = api;
  workload.num_tasks = tasks;
  workload.block_size = 256 * KiB;
  workload.transfer_size = 64 * KiB;
  workload.segments = 32;
  return workload;
}

TEST(IorSimTest, EveryApiCompletesAndAccountsBytes) {
  for (const Api api : {Api::kPosix, Api::kH5l, Api::kA2, Api::kA2Lsmio, Api::kLsmio}) {
    const Workload workload = SmallWorkload(api, 4);
    const RunResult result = RunWorkload(workload, DefaultSim());
    EXPECT_GT(result.bandwidth, 0) << ApiName(api);
    EXPECT_GE(result.sim.phase_bytes_written, workload.TotalBytes()) << ApiName(api);
    EXPECT_GT(result.stored_bytes, 0u) << ApiName(api);
  }
}

TEST(IorSimTest, ResultsAreDeterministic) {
  const Workload workload = SmallWorkload(Api::kLsmio, 4);
  const RunResult a = RunWorkload(workload, DefaultSim());
  const RunResult b = RunWorkload(workload, DefaultSim());
  EXPECT_EQ(a.sim.phase_seconds, b.sim.phase_seconds);
  EXPECT_EQ(a.sim.total_rpcs, b.sim.total_rpcs);
}

TEST(IorSimTest, ReadPassVerifiesAndTimes) {
  for (const Api api : {Api::kPosix, Api::kH5l, Api::kA2, Api::kA2Lsmio, Api::kLsmio}) {
    Workload workload = SmallWorkload(api, 2);
    workload.read = true;
    const RunResult result = RunWorkload(workload, DefaultSim());
    EXPECT_GT(result.bandwidth, 0) << ApiName(api);
    EXPECT_GE(result.sim.phase_bytes_read, workload.TotalBytes()) << ApiName(api);
    // The timed phase is the read: write bytes in phase must be ~0 (LSMIO
    // reads may touch metadata, so allow slack but not the full payload).
    EXPECT_LT(result.sim.phase_bytes_written, workload.TotalBytes() / 4)
        << ApiName(api);
  }
}

TEST(IorSimTest, FilePerProcessBeatsSharedPastStripeCount) {
  Workload shared = SmallWorkload(Api::kPosix, 16);
  Workload fpp = shared;
  fpp.file_per_process = true;
  pfs::SimOptions sim = DefaultSim();

  const double shared_bw = RunWorkload(shared, sim).bandwidth;
  const double fpp_bw = RunWorkload(fpp, sim).bandwidth;
  EXPECT_GT(fpp_bw, 1.5 * shared_bw);
}

TEST(IorSimTest, PaperHeadline_LsmioBeatsIorPastStripeCount) {
  // Figure 5's crossover: at 16 tasks over a 4-wide stripe, LSMIO must beat
  // the shared-file POSIX baseline decisively.
  const pfs::SimOptions sim = DefaultSim();
  const double posix_bw = RunWorkload(SmallWorkload(Api::kPosix, 16), sim).bandwidth;
  const double lsmio_bw = RunWorkload(SmallWorkload(Api::kLsmio, 16), sim).bandwidth;
  EXPECT_GT(lsmio_bw, 2.0 * posix_bw);
}

TEST(IorSimTest, PaperHeadline_IorBeatsLsmioAtOneNode) {
  // ...but at 1 task the baseline's raw streaming wins (Figure 5, low end).
  const pfs::SimOptions sim = DefaultSim();
  Workload posix = SmallWorkload(Api::kPosix, 1);
  Workload lsmio = SmallWorkload(Api::kLsmio, 1);
  // More data so constant costs wash out.
  posix.segments = lsmio.segments = 16;
  const double posix_bw = RunWorkload(posix, sim).bandwidth;
  const double lsmio_bw = RunWorkload(lsmio, sim).bandwidth;
  EXPECT_GT(posix_bw, lsmio_bw);
}

TEST(IorSimTest, PaperHeadline_H5lIsSlowerThanPosix) {
  const pfs::SimOptions sim = DefaultSim();
  const double posix_bw = RunWorkload(SmallWorkload(Api::kPosix, 8), sim).bandwidth;
  const double h5l_bw = RunWorkload(SmallWorkload(Api::kH5l, 8), sim).bandwidth;
  EXPECT_GT(posix_bw, h5l_bw);
}

TEST(IorSimTest, PaperHeadline_LsmioBeatsA2BeatsH5l) {
  // Figure 6 ordering at high concurrency.
  const pfs::SimOptions sim = DefaultSim();
  const double h5l_bw = RunWorkload(MediumWorkload(Api::kH5l, 16), sim).bandwidth;
  const double a2_bw = RunWorkload(MediumWorkload(Api::kA2, 16), sim).bandwidth;
  const double lsmio_bw = RunWorkload(MediumWorkload(Api::kLsmio, 16), sim).bandwidth;
  EXPECT_GT(a2_bw, h5l_bw);
  EXPECT_GT(lsmio_bw, a2_bw);
}

TEST(IorSimTest, PaperHeadline_PluginSitsBetweenA2AndLsmio) {
  // Figure 7: ADIOS2 < LSMIO-plugin < LSMIO.
  const pfs::SimOptions sim = DefaultSim();
  const double a2_bw = RunWorkload(MediumWorkload(Api::kA2, 16), sim).bandwidth;
  const double plugin_bw =
      RunWorkload(MediumWorkload(Api::kA2Lsmio, 16), sim).bandwidth;
  const double lsmio_bw = RunWorkload(MediumWorkload(Api::kLsmio, 16), sim).bandwidth;
  EXPECT_GT(plugin_bw, a2_bw);
  EXPECT_GT(lsmio_bw, plugin_bw);
}

TEST(IorSimTest, CollectiveImprovesSharedFileWrites) {
  // Figure 9: two-phase collective I/O rescues the strided shared file.
  const pfs::SimOptions sim = DefaultSim();
  Workload plain = SmallWorkload(Api::kPosix, 16);
  Workload collective = plain;
  collective.collective = true;
  const double plain_bw = RunWorkload(plain, sim).bandwidth;
  const double collective_bw = RunWorkload(collective, sim).bandwidth;
  EXPECT_GT(collective_bw, 1.5 * plain_bw);
}

TEST(IorSimTest, LsmioStillBeatsCollectiveIorAtScale) {
  const pfs::SimOptions sim = DefaultSim();
  Workload collective = MediumWorkload(Api::kPosix, 16);
  collective.collective = true;
  const double collective_bw = RunWorkload(collective, sim).bandwidth;
  const double lsmio_bw = RunWorkload(MediumWorkload(Api::kLsmio, 16), sim).bandwidth;
  EXPECT_GT(lsmio_bw, collective_bw);
}

TEST(IorSimTest, LargerTransfersHelpSharedFilePastStripeCount) {
  // Figure 5's secondary observation: 1M blocks beat 64K blocks once the
  // stripe count is exceeded.
  const pfs::SimOptions sim = DefaultSim();
  Workload small = SmallWorkload(Api::kPosix, 16);
  Workload large = small;
  large.block_size = 1 * MiB;
  large.transfer_size = 1 * MiB;
  large.segments = 1;  // keep total bytes equal
  const double small_bw = RunWorkload(small, sim).bandwidth;
  const double large_bw = RunWorkload(large, sim).bandwidth;
  EXPECT_GT(large_bw, 1.5 * small_bw);
}

TEST(IorSimTest, LsmioWritesAreAmplifiedButSequential) {
  // Diagnostics: LSMIO stores more bytes than the payload (format overhead)
  // but ships far fewer, larger RPCs than the strided baseline.
  const pfs::SimOptions sim = DefaultSim();
  const Workload posix = SmallWorkload(Api::kPosix, 8);
  const Workload lsmio = SmallWorkload(Api::kLsmio, 8);
  const RunResult posix_result = RunWorkload(posix, sim);
  const RunResult lsmio_result = RunWorkload(lsmio, sim);

  EXPECT_GE(lsmio_result.stored_bytes, lsmio.TotalBytes());
  EXPECT_LT(lsmio_result.sim.total_seeks, posix_result.sim.total_seeks);
}

TEST(IorSimTest, A2ReadOutpacesLsmioRead) {
  // Figure 10: ADIOS2's large sequential subfile reads beat LSMIO's
  // synchronous point lookups.
  const pfs::SimOptions sim = DefaultSim();
  Workload a2 = SmallWorkload(Api::kA2, 8);
  a2.read = true;
  Workload lsmio = SmallWorkload(Api::kLsmio, 8);
  lsmio.read = true;
  const double a2_bw = RunWorkload(a2, sim).bandwidth;
  const double lsmio_bw = RunWorkload(lsmio, sim).bandwidth;
  EXPECT_GT(a2_bw, lsmio_bw);
}

}  // namespace
}  // namespace lsmio::iorsim
