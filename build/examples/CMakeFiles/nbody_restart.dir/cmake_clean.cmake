file(REMOVE_RECURSE
  "CMakeFiles/nbody_restart.dir/nbody_restart.cpp.o"
  "CMakeFiles/nbody_restart.dir/nbody_restart.cpp.o.d"
  "nbody_restart"
  "nbody_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
