# Empty dependencies file for nbody_restart.
# This may be replaced when dependencies are built.
