file(REMOVE_RECURSE
  "CMakeFiles/heat2d_checkpoint.dir/heat2d_checkpoint.cpp.o"
  "CMakeFiles/heat2d_checkpoint.dir/heat2d_checkpoint.cpp.o.d"
  "heat2d_checkpoint"
  "heat2d_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat2d_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
