file(REMOVE_RECURSE
  "CMakeFiles/a2_migration.dir/a2_migration.cpp.o"
  "CMakeFiles/a2_migration.dir/a2_migration.cpp.o.d"
  "a2_migration"
  "a2_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
