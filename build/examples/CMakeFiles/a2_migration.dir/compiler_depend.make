# Empty compiler generated dependencies file for a2_migration.
# This may be replaced when dependencies are built.
