# Empty dependencies file for lsmio_pfs.
# This may be replaced when dependencies are built.
