file(REMOVE_RECURSE
  "CMakeFiles/lsmio_pfs.dir/layout.cc.o"
  "CMakeFiles/lsmio_pfs.dir/layout.cc.o.d"
  "CMakeFiles/lsmio_pfs.dir/sim.cc.o"
  "CMakeFiles/lsmio_pfs.dir/sim.cc.o.d"
  "liblsmio_pfs.a"
  "liblsmio_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmio_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
