file(REMOVE_RECURSE
  "liblsmio_pfs.a"
)
