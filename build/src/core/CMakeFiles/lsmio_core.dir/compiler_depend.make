# Empty compiler generated dependencies file for lsmio_core.
# This may be replaced when dependencies are built.
