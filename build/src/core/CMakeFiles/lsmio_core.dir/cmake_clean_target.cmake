file(REMOVE_RECURSE
  "liblsmio_core.a"
)
