file(REMOVE_RECURSE
  "CMakeFiles/lsmio_core.dir/fstream.cc.o"
  "CMakeFiles/lsmio_core.dir/fstream.cc.o.d"
  "CMakeFiles/lsmio_core.dir/manager.cc.o"
  "CMakeFiles/lsmio_core.dir/manager.cc.o.d"
  "CMakeFiles/lsmio_core.dir/plugin.cc.o"
  "CMakeFiles/lsmio_core.dir/plugin.cc.o.d"
  "CMakeFiles/lsmio_core.dir/store.cc.o"
  "CMakeFiles/lsmio_core.dir/store.cc.o.d"
  "liblsmio_core.a"
  "liblsmio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
