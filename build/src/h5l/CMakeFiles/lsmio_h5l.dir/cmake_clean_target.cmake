file(REMOVE_RECURSE
  "liblsmio_h5l.a"
)
