# Empty dependencies file for lsmio_h5l.
# This may be replaced when dependencies are built.
