file(REMOVE_RECURSE
  "CMakeFiles/lsmio_h5l.dir/h5l.cc.o"
  "CMakeFiles/lsmio_h5l.dir/h5l.cc.o.d"
  "liblsmio_h5l.a"
  "liblsmio_h5l.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmio_h5l.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
