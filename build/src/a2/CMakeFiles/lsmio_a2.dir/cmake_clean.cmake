file(REMOVE_RECURSE
  "CMakeFiles/lsmio_a2.dir/a2.cc.o"
  "CMakeFiles/lsmio_a2.dir/a2.cc.o.d"
  "CMakeFiles/lsmio_a2.dir/bp_engine.cc.o"
  "CMakeFiles/lsmio_a2.dir/bp_engine.cc.o.d"
  "CMakeFiles/lsmio_a2.dir/xml.cc.o"
  "CMakeFiles/lsmio_a2.dir/xml.cc.o.d"
  "liblsmio_a2.a"
  "liblsmio_a2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmio_a2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
