file(REMOVE_RECURSE
  "liblsmio_a2.a"
)
