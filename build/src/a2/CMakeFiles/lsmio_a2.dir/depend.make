# Empty dependencies file for lsmio_a2.
# This may be replaced when dependencies are built.
