
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/a2/a2.cc" "src/a2/CMakeFiles/lsmio_a2.dir/a2.cc.o" "gcc" "src/a2/CMakeFiles/lsmio_a2.dir/a2.cc.o.d"
  "/root/repo/src/a2/bp_engine.cc" "src/a2/CMakeFiles/lsmio_a2.dir/bp_engine.cc.o" "gcc" "src/a2/CMakeFiles/lsmio_a2.dir/bp_engine.cc.o.d"
  "/root/repo/src/a2/xml.cc" "src/a2/CMakeFiles/lsmio_a2.dir/xml.cc.o" "gcc" "src/a2/CMakeFiles/lsmio_a2.dir/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lsmio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/lsmio_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
