# Empty compiler generated dependencies file for lsmio_vfs.
# This may be replaced when dependencies are built.
