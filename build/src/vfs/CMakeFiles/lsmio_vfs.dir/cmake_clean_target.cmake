file(REMOVE_RECURSE
  "liblsmio_vfs.a"
)
