file(REMOVE_RECURSE
  "CMakeFiles/lsmio_vfs.dir/mem_vfs.cc.o"
  "CMakeFiles/lsmio_vfs.dir/mem_vfs.cc.o.d"
  "CMakeFiles/lsmio_vfs.dir/posix_vfs.cc.o"
  "CMakeFiles/lsmio_vfs.dir/posix_vfs.cc.o.d"
  "CMakeFiles/lsmio_vfs.dir/trace.cc.o"
  "CMakeFiles/lsmio_vfs.dir/trace.cc.o.d"
  "CMakeFiles/lsmio_vfs.dir/trace_vfs.cc.o"
  "CMakeFiles/lsmio_vfs.dir/trace_vfs.cc.o.d"
  "liblsmio_vfs.a"
  "liblsmio_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmio_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
