
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/mem_vfs.cc" "src/vfs/CMakeFiles/lsmio_vfs.dir/mem_vfs.cc.o" "gcc" "src/vfs/CMakeFiles/lsmio_vfs.dir/mem_vfs.cc.o.d"
  "/root/repo/src/vfs/posix_vfs.cc" "src/vfs/CMakeFiles/lsmio_vfs.dir/posix_vfs.cc.o" "gcc" "src/vfs/CMakeFiles/lsmio_vfs.dir/posix_vfs.cc.o.d"
  "/root/repo/src/vfs/trace.cc" "src/vfs/CMakeFiles/lsmio_vfs.dir/trace.cc.o" "gcc" "src/vfs/CMakeFiles/lsmio_vfs.dir/trace.cc.o.d"
  "/root/repo/src/vfs/trace_vfs.cc" "src/vfs/CMakeFiles/lsmio_vfs.dir/trace_vfs.cc.o" "gcc" "src/vfs/CMakeFiles/lsmio_vfs.dir/trace_vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lsmio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
