file(REMOVE_RECURSE
  "liblsmio_iorsim.a"
)
