# Empty dependencies file for lsmio_iorsim.
# This may be replaced when dependencies are built.
