file(REMOVE_RECURSE
  "CMakeFiles/lsmio_iorsim.dir/iorsim.cc.o"
  "CMakeFiles/lsmio_iorsim.dir/iorsim.cc.o.d"
  "liblsmio_iorsim.a"
  "liblsmio_iorsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmio_iorsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
