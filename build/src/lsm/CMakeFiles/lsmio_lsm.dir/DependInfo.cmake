
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/arena.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/arena.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/arena.cc.o.d"
  "/root/repo/src/lsm/block.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/block.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/block.cc.o.d"
  "/root/repo/src/lsm/block_builder.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/block_builder.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/block_builder.cc.o.d"
  "/root/repo/src/lsm/builder.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/builder.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/builder.cc.o.d"
  "/root/repo/src/lsm/cache.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/cache.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/cache.cc.o.d"
  "/root/repo/src/lsm/comparator.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/comparator.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/comparator.cc.o.d"
  "/root/repo/src/lsm/compression.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/compression.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/compression.cc.o.d"
  "/root/repo/src/lsm/db_impl.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/db_impl.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/db_impl.cc.o.d"
  "/root/repo/src/lsm/db_iter.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/db_iter.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/db_iter.cc.o.d"
  "/root/repo/src/lsm/dbformat.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/dbformat.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/dbformat.cc.o.d"
  "/root/repo/src/lsm/filter_block.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/filter_block.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/filter_block.cc.o.d"
  "/root/repo/src/lsm/filter_policy.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/filter_policy.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/filter_policy.cc.o.d"
  "/root/repo/src/lsm/format.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/format.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/format.cc.o.d"
  "/root/repo/src/lsm/iterator.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/iterator.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/iterator.cc.o.d"
  "/root/repo/src/lsm/log_reader.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/log_reader.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/log_reader.cc.o.d"
  "/root/repo/src/lsm/log_writer.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/log_writer.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/log_writer.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/memtable.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/memtable.cc.o.d"
  "/root/repo/src/lsm/merger.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/merger.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/merger.cc.o.d"
  "/root/repo/src/lsm/table.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/table.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/table.cc.o.d"
  "/root/repo/src/lsm/table_builder.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/table_builder.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/table_builder.cc.o.d"
  "/root/repo/src/lsm/table_cache.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/table_cache.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/table_cache.cc.o.d"
  "/root/repo/src/lsm/two_level_iterator.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/two_level_iterator.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/two_level_iterator.cc.o.d"
  "/root/repo/src/lsm/version.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/version.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/version.cc.o.d"
  "/root/repo/src/lsm/write_batch.cc" "src/lsm/CMakeFiles/lsmio_lsm.dir/write_batch.cc.o" "gcc" "src/lsm/CMakeFiles/lsmio_lsm.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lsmio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/lsmio_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
