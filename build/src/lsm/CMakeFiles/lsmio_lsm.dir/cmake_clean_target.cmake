file(REMOVE_RECURSE
  "liblsmio_lsm.a"
)
