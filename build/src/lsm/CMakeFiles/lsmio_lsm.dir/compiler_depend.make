# Empty compiler generated dependencies file for lsmio_lsm.
# This may be replaced when dependencies are built.
