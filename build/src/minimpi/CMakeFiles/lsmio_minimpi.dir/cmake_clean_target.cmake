file(REMOVE_RECURSE
  "liblsmio_minimpi.a"
)
