file(REMOVE_RECURSE
  "CMakeFiles/lsmio_minimpi.dir/minimpi.cc.o"
  "CMakeFiles/lsmio_minimpi.dir/minimpi.cc.o.d"
  "liblsmio_minimpi.a"
  "liblsmio_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmio_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
