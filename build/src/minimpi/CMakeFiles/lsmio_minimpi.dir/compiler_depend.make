# Empty compiler generated dependencies file for lsmio_minimpi.
# This may be replaced when dependencies are built.
