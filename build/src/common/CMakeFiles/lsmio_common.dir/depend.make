# Empty dependencies file for lsmio_common.
# This may be replaced when dependencies are built.
