file(REMOVE_RECURSE
  "liblsmio_common.a"
)
