file(REMOVE_RECURSE
  "CMakeFiles/lsmio_common.dir/coding.cc.o"
  "CMakeFiles/lsmio_common.dir/coding.cc.o.d"
  "CMakeFiles/lsmio_common.dir/crc32c.cc.o"
  "CMakeFiles/lsmio_common.dir/crc32c.cc.o.d"
  "CMakeFiles/lsmio_common.dir/hash.cc.o"
  "CMakeFiles/lsmio_common.dir/hash.cc.o.d"
  "CMakeFiles/lsmio_common.dir/histogram.cc.o"
  "CMakeFiles/lsmio_common.dir/histogram.cc.o.d"
  "CMakeFiles/lsmio_common.dir/logging.cc.o"
  "CMakeFiles/lsmio_common.dir/logging.cc.o.d"
  "CMakeFiles/lsmio_common.dir/status.cc.o"
  "CMakeFiles/lsmio_common.dir/status.cc.o.d"
  "CMakeFiles/lsmio_common.dir/thread_pool.cc.o"
  "CMakeFiles/lsmio_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/lsmio_common.dir/units.cc.o"
  "CMakeFiles/lsmio_common.dir/units.cc.o.d"
  "liblsmio_common.a"
  "liblsmio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsmio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
