# Empty dependencies file for bench_fig10_read.
# This may be replaced when dependencies are built.
