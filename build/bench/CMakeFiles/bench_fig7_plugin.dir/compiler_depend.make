# Empty compiler generated dependencies file for bench_fig7_plugin.
# This may be replaced when dependencies are built.
