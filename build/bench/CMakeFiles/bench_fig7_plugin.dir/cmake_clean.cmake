file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_plugin.dir/bench_fig7_plugin.cc.o"
  "CMakeFiles/bench_fig7_plugin.dir/bench_fig7_plugin.cc.o.d"
  "bench_fig7_plugin"
  "bench_fig7_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
