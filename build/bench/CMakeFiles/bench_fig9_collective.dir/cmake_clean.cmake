file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_collective.dir/bench_fig9_collective.cc.o"
  "CMakeFiles/bench_fig9_collective.dir/bench_fig9_collective.cc.o.d"
  "bench_fig9_collective"
  "bench_fig9_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
