# Empty dependencies file for bench_fig1_growth.
# This may be replaced when dependencies are built.
