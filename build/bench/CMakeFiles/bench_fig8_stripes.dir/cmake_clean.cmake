file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_stripes.dir/bench_fig8_stripes.cc.o"
  "CMakeFiles/bench_fig8_stripes.dir/bench_fig8_stripes.cc.o.d"
  "bench_fig8_stripes"
  "bench_fig8_stripes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_stripes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
