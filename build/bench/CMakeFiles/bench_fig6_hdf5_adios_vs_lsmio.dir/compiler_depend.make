# Empty compiler generated dependencies file for bench_fig6_hdf5_adios_vs_lsmio.
# This may be replaced when dependencies are built.
