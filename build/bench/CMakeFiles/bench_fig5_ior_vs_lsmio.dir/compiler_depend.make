# Empty compiler generated dependencies file for bench_fig5_ior_vs_lsmio.
# This may be replaced when dependencies are built.
