
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_ior_vs_lsmio.cc" "bench/CMakeFiles/bench_fig5_ior_vs_lsmio.dir/bench_fig5_ior_vs_lsmio.cc.o" "gcc" "bench/CMakeFiles/bench_fig5_ior_vs_lsmio.dir/bench_fig5_ior_vs_lsmio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iorsim/CMakeFiles/lsmio_iorsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lsmio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/a2/CMakeFiles/lsmio_a2.dir/DependInfo.cmake"
  "/root/repo/build/src/h5l/CMakeFiles/lsmio_h5l.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/lsmio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/lsmio_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/lsmio_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/lsmio_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lsmio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
