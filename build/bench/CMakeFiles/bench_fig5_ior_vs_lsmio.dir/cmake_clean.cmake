file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ior_vs_lsmio.dir/bench_fig5_ior_vs_lsmio.cc.o"
  "CMakeFiles/bench_fig5_ior_vs_lsmio.dir/bench_fig5_ior_vs_lsmio.cc.o.d"
  "bench_fig5_ior_vs_lsmio"
  "bench_fig5_ior_vs_lsmio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ior_vs_lsmio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
