# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vfs_test "/root/repo/build/tests/vfs_test")
set_tests_properties(vfs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lsm_test "/root/repo/build/tests/lsm_test")
set_tests_properties(lsm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;27;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lsm_db_test "/root/repo/build/tests/lsm_db_test")
set_tests_properties(lsm_db_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;42;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(minimpi_test "/root/repo/build/tests/minimpi_test")
set_tests_properties(minimpi_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;49;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pfs_test "/root/repo/build/tests/pfs_test")
set_tests_properties(pfs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;51;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(h5l_test "/root/repo/build/tests/h5l_test")
set_tests_properties(h5l_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;53;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(a2_test "/root/repo/build/tests/a2_test")
set_tests_properties(a2_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;55;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;57;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(iorsim_test "/root/repo/build/tests/iorsim_test")
set_tests_properties(iorsim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;64;lsmio_add_test;/root/repo/tests/CMakeLists.txt;0;")
