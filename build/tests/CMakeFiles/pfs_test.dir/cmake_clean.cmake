file(REMOVE_RECURSE
  "CMakeFiles/pfs_test.dir/pfs/layout_test.cc.o"
  "CMakeFiles/pfs_test.dir/pfs/layout_test.cc.o.d"
  "CMakeFiles/pfs_test.dir/pfs/sim_test.cc.o"
  "CMakeFiles/pfs_test.dir/pfs/sim_test.cc.o.d"
  "pfs_test"
  "pfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
