# Empty compiler generated dependencies file for h5l_test.
# This may be replaced when dependencies are built.
