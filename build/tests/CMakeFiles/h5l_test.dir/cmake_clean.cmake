file(REMOVE_RECURSE
  "CMakeFiles/h5l_test.dir/h5l/h5l_test.cc.o"
  "CMakeFiles/h5l_test.dir/h5l/h5l_test.cc.o.d"
  "h5l_test"
  "h5l_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h5l_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
