
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lsm/arena_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/arena_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/arena_test.cc.o.d"
  "/root/repo/tests/lsm/block_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/block_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/block_test.cc.o.d"
  "/root/repo/tests/lsm/cache_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/cache_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/cache_test.cc.o.d"
  "/root/repo/tests/lsm/compression_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/compression_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/compression_test.cc.o.d"
  "/root/repo/tests/lsm/dbformat_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/dbformat_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/dbformat_test.cc.o.d"
  "/root/repo/tests/lsm/filter_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/filter_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/filter_test.cc.o.d"
  "/root/repo/tests/lsm/format_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/format_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/format_test.cc.o.d"
  "/root/repo/tests/lsm/log_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/log_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/log_test.cc.o.d"
  "/root/repo/tests/lsm/memtable_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/memtable_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/memtable_test.cc.o.d"
  "/root/repo/tests/lsm/skiplist_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/skiplist_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/skiplist_test.cc.o.d"
  "/root/repo/tests/lsm/table_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/table_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/table_test.cc.o.d"
  "/root/repo/tests/lsm/version_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/version_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/version_test.cc.o.d"
  "/root/repo/tests/lsm/write_batch_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/write_batch_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/write_batch_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lsmio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/iorsim/CMakeFiles/lsmio_iorsim.dir/DependInfo.cmake"
  "/root/repo/build/src/a2/CMakeFiles/lsmio_a2.dir/DependInfo.cmake"
  "/root/repo/build/src/h5l/CMakeFiles/lsmio_h5l.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/lsmio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/lsmio_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/lsmio_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/lsmio_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lsmio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
