file(REMOVE_RECURSE
  "CMakeFiles/lsm_test.dir/lsm/arena_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/arena_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/block_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/block_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/cache_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/cache_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/compression_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/compression_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/dbformat_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/dbformat_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/filter_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/filter_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/format_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/format_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/log_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/log_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/memtable_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/memtable_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/skiplist_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/skiplist_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/table_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/table_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/version_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/version_test.cc.o.d"
  "CMakeFiles/lsm_test.dir/lsm/write_batch_test.cc.o"
  "CMakeFiles/lsm_test.dir/lsm/write_batch_test.cc.o.d"
  "lsm_test"
  "lsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
