file(REMOVE_RECURSE
  "CMakeFiles/iorsim_test.dir/iorsim/iorsim_test.cc.o"
  "CMakeFiles/iorsim_test.dir/iorsim/iorsim_test.cc.o.d"
  "iorsim_test"
  "iorsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iorsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
