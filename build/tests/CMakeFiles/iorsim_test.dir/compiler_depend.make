# Empty compiler generated dependencies file for iorsim_test.
# This may be replaced when dependencies are built.
