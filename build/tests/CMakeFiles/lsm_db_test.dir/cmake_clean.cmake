file(REMOVE_RECURSE
  "CMakeFiles/lsm_db_test.dir/lsm/db_fault_test.cc.o"
  "CMakeFiles/lsm_db_test.dir/lsm/db_fault_test.cc.o.d"
  "CMakeFiles/lsm_db_test.dir/lsm/db_property_test.cc.o"
  "CMakeFiles/lsm_db_test.dir/lsm/db_property_test.cc.o.d"
  "CMakeFiles/lsm_db_test.dir/lsm/db_recovery_test.cc.o"
  "CMakeFiles/lsm_db_test.dir/lsm/db_recovery_test.cc.o.d"
  "CMakeFiles/lsm_db_test.dir/lsm/db_snapshot_test.cc.o"
  "CMakeFiles/lsm_db_test.dir/lsm/db_snapshot_test.cc.o.d"
  "CMakeFiles/lsm_db_test.dir/lsm/db_test.cc.o"
  "CMakeFiles/lsm_db_test.dir/lsm/db_test.cc.o.d"
  "lsm_db_test"
  "lsm_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
