# Empty compiler generated dependencies file for a2_test.
# This may be replaced when dependencies are built.
