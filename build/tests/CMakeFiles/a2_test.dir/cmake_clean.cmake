file(REMOVE_RECURSE
  "CMakeFiles/a2_test.dir/a2/a2_test.cc.o"
  "CMakeFiles/a2_test.dir/a2/a2_test.cc.o.d"
  "CMakeFiles/a2_test.dir/a2/xml_test.cc.o"
  "CMakeFiles/a2_test.dir/a2/xml_test.cc.o.d"
  "a2_test"
  "a2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
