// Lint gate: MUST compile under -Werror=thread-safety.
// Same logic as requires_violation.cc with the locking done correctly,
// proving a clean result means "analyzed and passed", not "not analyzed".
#include "common/synchronization.h"

namespace {

class Counter {
 public:
  void IncrementLocked() {
    lsmio::MutexLock lock(&mu_);
    ++value_;
  }
  long Read() const {
    lsmio::MutexLock lock(&mu_);
    return value_;
  }
  long ReadWithHelper() const {
    lsmio::MutexLock lock(&mu_);
    return ReadLocked();
  }

 private:
  long ReadLocked() const REQUIRES(mu_) { return value_; }

  mutable lsmio::Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.IncrementLocked();
  return static_cast<int>(c.Read() + c.ReadWithHelper());
}
