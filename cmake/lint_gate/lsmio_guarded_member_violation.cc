// Lint gate: lsmio-guarded-member MUST flag this file.
// A class owning an lsmio::Mutex has a mutable member that is neither
// GUARDED_BY nor waived with an `unguarded:` rationale comment.
#include "common/synchronization.h"

namespace {

class Counter {
 public:
  void Increment() {
    lsmio::MutexLock lock(&mu_);
    ++value_;
  }

 private:
  mutable lsmio::Mutex mu_;
  long value_ = 0;  // violation: no GUARDED_BY, no rationale
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
