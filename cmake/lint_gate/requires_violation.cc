// Lint gate: MUST NOT compile under -Werror=thread-safety.
// Touches a GUARDED_BY member from a method that does not hold the mutex.
#include "common/synchronization.h"

namespace {

class Counter {
 public:
  void IncrementLocked() {
    lsmio::MutexLock lock(&mu_);
    ++value_;
  }
  // BUG (deliberate): reads value_ without mu_ — the analysis must reject it.
  long Read() const { return value_; }

 private:
  mutable lsmio::Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.IncrementLocked();
  return static_cast<int>(c.Read());
}
