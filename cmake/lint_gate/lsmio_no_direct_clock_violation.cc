// Lint gate: lsmio-no-direct-clock MUST flag this file.
// Calls std::chrono::steady_clock::now() directly instead of going through
// lsmio::SystemClock.
#include <chrono>

long Nanos() {
  // violation: raw clock read, invisible to a mock clock
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int main() { return Nanos() != 0 ? 0 : 1; }
