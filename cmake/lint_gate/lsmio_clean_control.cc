// Lint gate: the control snippet — all four lsmio-* checks enabled, zero
// findings expected. Exercises each check's domain the conforming way, so a
// silent run means "analyzed and clean", not "checks not loaded".
#include "common/status.h"
#include "common/synchronization.h"

namespace {

class Counter {
 public:
  void Increment() {
    lsmio::MutexLock lock(&mu_);
    ++value_;
  }
  long Read() const {
    lsmio::MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable lsmio::Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
  const int limit_ = 8;        // const: exempt without annotation
  long generation_ = 0;        // unguarded: single-writer, set before threads start
};

lsmio::Status MightFail(bool fail) {
  if (fail) return lsmio::Status::IOError("seeded failure");
  return lsmio::Status::OK();
}

}  // namespace

int main() {
  Counter c;
  c.Increment();

  lsmio::Status checked = MightFail(false);
  if (!checked.ok()) return 1;

  // The sanctioned way to drop an error, visible to grep and the tracker.
  MightFail(true).IgnoreError();

  return static_cast<int>(c.Read()) == 1 ? 0 : 1;
}
