// Lint gate: lsmio-status-ignore MUST flag this file.
// Void-casts a Status: compiles despite [[nodiscard]], but leaves the
// LSMIO_STATUS_DEBUG obligation unsatisfied — the sanctioned spelling is
// IgnoreError().
#include "common/status.h"

void DropStatus() {
  // violation: silences the compiler, not the runtime tracker
  (void)lsmio::Status::IOError("dropped");
}

int main() {
  DropStatus();
  return 0;
}
