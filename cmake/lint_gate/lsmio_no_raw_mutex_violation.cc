// Lint gate: lsmio-no-raw-mutex MUST flag this file.
// Declares a raw std::mutex and a std::lock_guard instead of the annotated
// lsmio::Mutex / lsmio::MutexLock wrappers.
#include <mutex>

namespace {

class Counter {
 public:
  void Increment() {
    std::lock_guard<std::mutex> lock(mu_);  // violation: raw lock holder
    ++value_;
  }

 private:
  std::mutex mu_;  // violation: raw mutex
  long value_ = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
