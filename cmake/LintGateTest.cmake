# Configure-time self-test of the lint toolchain (included only when
# LSMIO_LINT=ON, i.e. compiler is Clang).
#
# A lint build that silently stopped analyzing — wrong compiler, annotations
# compiled away, flag dropped, plugin that failed to load — looks exactly
# like a clean one. So before trusting the build, prove the gate fires both
# ways:
#
# Phase 1 (thread-safety analysis):
#   1. a snippet that touches a GUARDED_BY member without holding the mutex
#      must FAIL to compile under -Werror=thread-safety;
#   2. the same logic with correct locking must SUCCEED.
#
# Phase 2 (lsmio-* clang-tidy plugin, lint/lsmio_checks):
#   3. build the plugin in a nested configure under this build tree;
#   4. run clang-tidy --load over one seeded-violation snippet per check —
#      every check must produce a finding, or the configure FAILS;
#   5. run the clean control snippet with all lsmio-* checks enabled — any
#      finding (or compile error) FAILS the configure.
#
# On success LSMIO_CHECKS_PLUGIN holds the plugin path for the caller to
# splice into CMAKE_CXX_CLANG_TIDY. If the clang-tidy dev headers are not
# installed the plugin phase is skipped with a warning unless
# -DLSMIO_LINT_REQUIRE_PLUGIN=ON promotes that to an error.

set(_lsmio_gate_dir "${CMAKE_CURRENT_LIST_DIR}/lint_gate")
set(_lsmio_gate_flags
  "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
  "-DCMAKE_CXX_STANDARD=20")

# --- Phase 1: thread-safety annotations -------------------------------------
# LSMIO_LINT_GATE_SKIP_PHASE1 exists ONLY so the phase-2 plugin machinery can
# be driven by a test harness on hosts without Clang (phase 1 needs the real
# -Wthread-safety). Never set it in a real lint build.

if(NOT LSMIO_LINT_GATE_SKIP_PHASE1)

try_compile(LSMIO_LINT_GATE_VIOLATION_COMPILES
  "${CMAKE_BINARY_DIR}/lint_gate_bad"
  "${_lsmio_gate_dir}/requires_violation.cc"
  CMAKE_FLAGS ${_lsmio_gate_flags}
  COMPILE_DEFINITIONS "-Wthread-safety -Werror=thread-safety")

if(LSMIO_LINT_GATE_VIOLATION_COMPILES)
  message(FATAL_ERROR
    "LSMIO_LINT gate test failed: a REQUIRES(mu) violation COMPILED. "
    "The thread-safety analysis is not active (annotations compiled away or "
    "-Wthread-safety not honored); a 'clean' lint build would be meaningless.")
endif()

try_compile(LSMIO_LINT_GATE_CONFORMING_COMPILES
  "${CMAKE_BINARY_DIR}/lint_gate_good"
  "${_lsmio_gate_dir}/requires_conforming.cc"
  CMAKE_FLAGS ${_lsmio_gate_flags}
  COMPILE_DEFINITIONS "-Wthread-safety -Werror=thread-safety")

if(NOT LSMIO_LINT_GATE_CONFORMING_COMPILES)
  message(FATAL_ERROR
    "LSMIO_LINT gate test failed: the conforming snippet did NOT compile. "
    "synchronization.h or the lint flags are broken.")
endif()

message(STATUS "LSMIO_LINT: gate test passed (REQUIRES violation rejected, conforming code accepted)")

endif()  # LSMIO_LINT_GATE_SKIP_PHASE1

# --- Phase 2: the lsmio-* clang-tidy plugin ---------------------------------

set(LSMIO_CHECKS_PLUGIN "")

# One message sink: a missing prerequisite is a warning by default, an error
# when the caller insists the plugin must be live (CI's lint leg).
function(_lsmio_plugin_unavailable reason)
  if(LSMIO_LINT_REQUIRE_PLUGIN)
    message(FATAL_ERROR "LSMIO_LINT: lsmio-checks plugin required but unavailable: ${reason}")
  else()
    message(WARNING "LSMIO_LINT: lsmio-checks plugin skipped: ${reason} "
                    "(thread-safety analysis and .clang-tidy checks still run; "
                    "set -DLSMIO_LINT_REQUIRE_PLUGIN=ON to make this an error)")
  endif()
endfunction()

if(NOT LSMIO_CLANG_TIDY)
  _lsmio_plugin_unavailable("clang-tidy not found")
  return()
endif()

execute_process(COMMAND "${LSMIO_CLANG_TIDY}" --version
  OUTPUT_VARIABLE _tidy_version_out ERROR_VARIABLE _tidy_version_out
  RESULT_VARIABLE _tidy_version_rc)
string(REGEX MATCH "LLVM version ([0-9]+)" _ "${_tidy_version_out}")
set(_tidy_major "${CMAKE_MATCH_1}")
if(NOT _tidy_version_rc EQUAL 0 OR NOT _tidy_major)
  _lsmio_plugin_unavailable("could not determine clang-tidy version")
  return()
endif()
if(_tidy_major LESS 15)
  _lsmio_plugin_unavailable("clang-tidy ${_tidy_major} < 15 has no stable --load plugin support")
  return()
endif()

# Nested configure+build keeps the plugin's LLVM dependency out of the main
# project. Incremental: a reconfigure of the main build reruns this, but the
# nested build is a no-op when the plugin sources are unchanged.
set(_plugin_build "${CMAKE_BINARY_DIR}/lsmio_checks_plugin")
execute_process(
  COMMAND "${CMAKE_COMMAND}"
          -S "${CMAKE_SOURCE_DIR}/lint/lsmio_checks"
          -B "${_plugin_build}"
          -G "${CMAKE_GENERATOR}"
          "-DCMAKE_CXX_COMPILER=${CMAKE_CXX_COMPILER}"
          -DCMAKE_BUILD_TYPE=Release
  RESULT_VARIABLE _plugin_cfg_rc
  OUTPUT_VARIABLE _plugin_cfg_log ERROR_VARIABLE _plugin_cfg_log)
if(NOT _plugin_cfg_rc EQUAL 0)
  _lsmio_plugin_unavailable("plugin configure failed (clang-tidy dev headers missing?):\n${_plugin_cfg_log}")
  return()
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${_plugin_build}"
  RESULT_VARIABLE _plugin_build_rc
  OUTPUT_VARIABLE _plugin_build_log ERROR_VARIABLE _plugin_build_log)
if(NOT _plugin_build_rc EQUAL 0)
  # A configured-but-unbuildable plugin is a real breakage (API drift in the
  # checks themselves), not a missing prerequisite: always fatal.
  message(FATAL_ERROR "LSMIO_LINT: lsmio-checks plugin failed to BUILD:\n${_plugin_build_log}")
endif()

file(GLOB _plugin_candidates
  "${_plugin_build}/liblsmio_checks.so" "${_plugin_build}/liblsmio_checks.dylib")
if(NOT _plugin_candidates)
  message(FATAL_ERROR "LSMIO_LINT: plugin built but liblsmio_checks.so not found in ${_plugin_build}")
endif()
list(GET _plugin_candidates 0 _plugin_lib)

# Load test: a version-mismatched or broken module fails right here instead
# of poisoning every TU of the main build.
execute_process(
  COMMAND "${LSMIO_CLANG_TIDY}" "--load=${_plugin_lib}"
          "--checks=-*,lsmio-*" --list-checks
  RESULT_VARIABLE _list_rc
  OUTPUT_VARIABLE _list_out ERROR_VARIABLE _list_out)
set(_lsmio_all_checks
  lsmio-no-raw-mutex lsmio-guarded-member lsmio-no-direct-clock lsmio-status-ignore)
foreach(_check IN LISTS _lsmio_all_checks)
  if(NOT _list_rc EQUAL 0 OR NOT _list_out MATCHES "${_check}")
    message(FATAL_ERROR
      "LSMIO_LINT: plugin loaded but check '${_check}' is not registered "
      "(clang-tidy/LLVM version mismatch with the plugin build?):\n${_list_out}")
  endif()
endforeach()

# Seeded violations: each check must fire on its snippet. `-*,<check>` keeps
# the run single-check so a hit is unambiguous; the snippet compiles cleanly,
# so any output line tagged [<check>] is the seeded finding.
set(_lsmio_gate_compile_args -- -std=c++20 "-I${CMAKE_SOURCE_DIR}/src")
foreach(_check IN LISTS _lsmio_all_checks)
  string(REPLACE "-" "_" _snippet_stem "${_check}")
  set(_snippet "${_lsmio_gate_dir}/${_snippet_stem}_violation.cc")
  execute_process(
    COMMAND "${LSMIO_CLANG_TIDY}" "--load=${_plugin_lib}"
            "--checks=-*,${_check}" --quiet "${_snippet}"
            ${_lsmio_gate_compile_args}
    OUTPUT_VARIABLE _gate_out ERROR_VARIABLE _gate_err)
  if(NOT _gate_out MATCHES "\\[${_check}\\]")
    message(FATAL_ERROR
      "LSMIO_LINT gate test failed: check '${_check}' produced NO finding on "
      "its seeded violation ${_snippet}. The check has gone silent; a 'clean' "
      "lint build would be meaningless.\nstdout:\n${_gate_out}\nstderr:\n${_gate_err}")
  endif()
endforeach()

# Clean control: conforming code, all four checks on, zero findings allowed.
execute_process(
  COMMAND "${LSMIO_CLANG_TIDY}" "--load=${_plugin_lib}"
          "--checks=-*,lsmio-*" --quiet
          "${_lsmio_gate_dir}/lsmio_clean_control.cc"
          ${_lsmio_gate_compile_args}
  OUTPUT_VARIABLE _control_out ERROR_VARIABLE _control_err)
if(_control_out MATCHES "\\[lsmio-" OR _control_out MATCHES "error:" OR _control_err MATCHES "error:")
  message(FATAL_ERROR
    "LSMIO_LINT gate test failed: the clean control snippet produced findings "
    "or failed to parse — a conforming tree would not lint clean.\n"
    "stdout:\n${_control_out}\nstderr:\n${_control_err}")
endif()

set(LSMIO_CHECKS_PLUGIN "${_plugin_lib}")
message(STATUS "LSMIO_LINT: lsmio-checks plugin gate passed "
               "(4/4 seeded violations caught, clean control clean): ${_plugin_lib}")
