# Configure-time self-test of the lint toolchain (included only when
# LSMIO_LINT=ON, i.e. compiler is Clang).
#
# A lint build that silently stopped analyzing — wrong compiler, annotations
# compiled away, flag dropped — looks exactly like a clean one. So before
# trusting the build, prove the gate fires both ways:
#   1. a snippet that touches a GUARDED_BY member without holding the mutex
#      must FAIL to compile under -Werror=thread-safety;
#   2. the same logic with correct locking must SUCCEED.

set(_lsmio_gate_dir "${CMAKE_CURRENT_LIST_DIR}/lint_gate")
set(_lsmio_gate_flags
  "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
  "-DCMAKE_CXX_STANDARD=20")

try_compile(LSMIO_LINT_GATE_VIOLATION_COMPILES
  "${CMAKE_BINARY_DIR}/lint_gate_bad"
  "${_lsmio_gate_dir}/requires_violation.cc"
  CMAKE_FLAGS ${_lsmio_gate_flags}
  COMPILE_DEFINITIONS "-Wthread-safety -Werror=thread-safety")

if(LSMIO_LINT_GATE_VIOLATION_COMPILES)
  message(FATAL_ERROR
    "LSMIO_LINT gate test failed: a REQUIRES(mu) violation COMPILED. "
    "The thread-safety analysis is not active (annotations compiled away or "
    "-Wthread-safety not honored); a 'clean' lint build would be meaningless.")
endif()

try_compile(LSMIO_LINT_GATE_CONFORMING_COMPILES
  "${CMAKE_BINARY_DIR}/lint_gate_good"
  "${_lsmio_gate_dir}/requires_conforming.cc"
  CMAKE_FLAGS ${_lsmio_gate_flags}
  COMPILE_DEFINITIONS "-Wthread-safety -Werror=thread-safety")

if(NOT LSMIO_LINT_GATE_CONFORMING_COMPILES)
  message(FATAL_ERROR
    "LSMIO_LINT gate test failed: the conforming snippet did NOT compile. "
    "synchronization.h or the lint flags are broken.")
endif()

message(STATUS "LSMIO_LINT: gate test passed (REQUIRES violation rejected, conforming code accepted)")
