// lsmio-no-raw-mutex
//
// Flags declarations (fields, locals, globals, parameters) whose type is a
// raw standard-library synchronization primitive: std::mutex and friends,
// std::condition_variable, and the std lock holders (std::lock_guard,
// std::unique_lock, std::scoped_lock, std::shared_lock).
//
// Project code must use the annotated wrappers from
// src/common/synchronization.h (lsmio::Mutex, lsmio::MutexLock,
// lsmio::CondVar): they carry Clang thread-safety capability annotations,
// so lock discipline is visible to -Wthread-safety, and they feed the
// LSMIO_MUTEX_DEBUG holder tracking. A raw std::mutex is invisible to both.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::lsmio {

class NoRawMutexCheck : public ClangTidyCheck {
 public:
  NoRawMutexCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string ExemptPaths;
  llvm::Regex ExemptRegex;
};

}  // namespace clang::tidy::lsmio
