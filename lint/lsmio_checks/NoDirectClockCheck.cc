#include "NoDirectClockCheck.h"

#include "LsmioCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang::tidy::lsmio {

namespace {

// rate_limiter.cc hosts RealClock, the one sanctioned chrono user.
// Tests and benchmarks time themselves however they like.
constexpr char kDefaultExemptPaths[] =
    "(^|/)(tests|bench|examples)/|common/rate_limiter\\.(h|cc)";

}  // namespace

NoDirectClockCheck::NoDirectClockCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      ExemptPaths(Options.get("ExemptPaths", kDefaultExemptPaths)),
      ExemptRegex(ExemptPaths) {}

void NoDirectClockCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "ExemptPaths", ExemptPaths);
}

void NoDirectClockCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::std::chrono::system_clock::now",
                   "::std::chrono::steady_clock::now",
                   "::std::chrono::high_resolution_clock::now",
                   "::std::this_thread::sleep_for",
                   "::std::this_thread::sleep_until"))))
          .bind("call"),
      this);
}

void NoDirectClockCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (Call == nullptr)
    return;
  if (IsExemptLocation(*Result.SourceManager, Call->getBeginLoc(), ExemptPaths,
                       ExemptRegex))
    return;
  const auto *Callee = Call->getDirectCallee();
  diag(Call->getBeginLoc(),
       "direct call to %0; route time through lsmio::SystemClock "
       "(common/rate_limiter.h) so tests can substitute a mock clock")
      << (Callee != nullptr ? Callee->getQualifiedNameAsString()
                            : std::string("a std::chrono clock"));
}

}  // namespace clang::tidy::lsmio
