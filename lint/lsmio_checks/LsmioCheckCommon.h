// Shared helpers for the LSMIO project clang-tidy checks.
//
// Every check carries an `ExemptPaths` option: an LLVM regex matched
// against the expansion-location file path of the offending construct.
// Matching files are skipped. This is how the checks scope themselves to
// src/ (tests/bench/examples are exempt by default) and how the wrapper
// implementations themselves (synchronization.h, the SystemClock impl in
// rate_limiter.cc) stay legal — and it is also why the configure-time gate
// snippets in cmake/lint_gate/ fire: they live under cmake/, which no
// default exemption matches.
#pragma once

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::lsmio {

/// True when `Loc` is invalid, unnamed, or inside a file whose path matches
/// `ExemptRegex` (empty pattern = nothing exempt).
inline bool IsExemptLocation(const SourceManager &SM, SourceLocation Loc,
                             llvm::StringRef ExemptPattern,
                             const llvm::Regex &ExemptRegex) {
  if (Loc.isInvalid())
    return true;
  const SourceLocation Expansion = SM.getExpansionLoc(Loc);
  const llvm::StringRef File = SM.getFilename(Expansion);
  if (File.empty())
    return true;
  if (ExemptPattern.empty())
    return false;
  return ExemptRegex.match(File);
}

}  // namespace clang::tidy::lsmio
