#include "GuardedMemberCheck.h"

#include "LsmioCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace clang::tidy::lsmio {

namespace {

constexpr char kDefaultExemptPaths[] = "(^|/)(tests|bench|examples)/";
constexpr char kDefaultRationaleToken[] = "unguarded:";

bool IsSyncPrimitiveType(QualType T) {
  const auto *RD = T->getAsCXXRecordDecl();
  if (RD == nullptr)
    return false;
  const std::string Name = RD->getQualifiedNameAsString();
  return Name == "lsmio::Mutex" || Name == "lsmio::CondVar";
}

bool IsStdAtomic(QualType T) {
  const auto *RD = T->getAsCXXRecordDecl();
  if (RD == nullptr)
    return false;
  return RD->getQualifiedNameAsString() == "std::atomic";
}

}  // namespace

GuardedMemberCheck::GuardedMemberCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      ExemptPaths(Options.get("ExemptPaths", kDefaultExemptPaths)),
      RationaleToken(Options.get("RationaleToken", kDefaultRationaleToken)),
      ExemptRegex(ExemptPaths) {}

void GuardedMemberCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "ExemptPaths", ExemptPaths);
  Options.store(Opts, "RationaleToken", RationaleToken);
}

void GuardedMemberCheck::registerMatchers(MatchFinder *Finder) {
  const auto LsmioMutexField = fieldDecl(hasType(
      hasUnqualifiedDesugaredType(recordType(hasDeclaration(
          cxxRecordDecl(hasName("::lsmio::Mutex")))))));
  // Only classes that OWN a mutex are in scope; classes protected by an
  // external lock (e.g. DBImpl's Writer) document that at the call site.
  Finder->addMatcher(
      fieldDecl(unless(isImplicit()),
                hasParent(cxxRecordDecl(isDefinition(), has(LsmioMutexField))))
          .bind("field"),
      this);
}

// Accepts the rationale either in the contiguous `//` comment block that
// immediately precedes the member, or trailing on the declaration's own
// line(s):
//
//   // unguarded: set once in Initialize(), read-only afterwards.
//   ThreadPool* pool_ = nullptr;
//
//   size_t workers_;  // unguarded: immutable after construction
bool GuardedMemberCheck::HasUnguardedRationale(const SourceManager &SM,
                                               const FieldDecl *Field) const {
  const SourceLocation Begin = SM.getExpansionLoc(Field->getBeginLoc());
  const SourceLocation End = SM.getExpansionLoc(Field->getEndLoc());
  if (Begin.isInvalid() || End.isInvalid())
    return false;
  const FileID FID = SM.getFileID(Begin);
  if (FID != SM.getFileID(End))
    return false;
  bool Invalid = false;
  const StringRef Buffer = SM.getBufferData(FID, &Invalid);
  if (Invalid)
    return false;

  llvm::SmallVector<StringRef, 0> Lines;
  Buffer.split(Lines, '\n');
  const unsigned BeginLine = SM.getSpellingLineNumber(Begin);  // 1-based
  unsigned EndLine = SM.getSpellingLineNumber(End);
  if (BeginLine == 0 || BeginLine > Lines.size())
    return false;
  EndLine = std::min<unsigned>(EndLine, Lines.size());

  // Declaration lines themselves (covers a trailing comment).
  for (unsigned L = BeginLine; L <= EndLine; ++L) {
    if (Lines[L - 1].contains(RationaleToken))
      return true;
  }
  // The contiguous comment block directly above.
  for (unsigned L = BeginLine - 1; L >= 1; --L) {
    const StringRef Trimmed = Lines[L - 1].trim();
    // substr comparison instead of starts_with/startswith: the latter was
    // renamed across LLVM releases and this must build on 15 through 18+.
    if (Trimmed.substr(0, 2) != "//")
      break;
    if (Trimmed.contains(RationaleToken))
      return true;
  }
  return false;
}

void GuardedMemberCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Field = Result.Nodes.getNodeAs<FieldDecl>("field");
  if (Field == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  if (IsExemptLocation(SM, Field->getLocation(), ExemptPaths, ExemptRegex))
    return;

  // Strip array layers so `Foo cells_[16]` is judged by its element type.
  QualType T = Result.Context->getBaseElementType(Field->getType());
  if (T.isConstQualified() || T->isReferenceType())
    return;
  if (IsSyncPrimitiveType(T) || IsStdAtomic(T))
    return;
  if (Field->hasAttr<GuardedByAttr>() || Field->hasAttr<PtGuardedByAttr>())
    return;
  if (HasUnguardedRationale(SM, Field))
    return;

  diag(Field->getLocation(),
       "member %0 of a mutex-owning class is not GUARDED_BY any lock; "
       "annotate it or waive it with an `%1` rationale comment on the "
       "declaration")
      << Field << RationaleToken;
}

}  // namespace clang::tidy::lsmio
