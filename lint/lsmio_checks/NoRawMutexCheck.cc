#include "NoRawMutexCheck.h"

#include "LsmioCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang::tidy::lsmio {

namespace {

// The wrapper header itself must be able to wrap the raw primitives, and
// test/bench code is allowed to use std synchronization directly.
constexpr char kDefaultExemptPaths[] =
    "(^|/)(tests|bench|examples)/|common/synchronization\\.h";

}  // namespace

NoRawMutexCheck::NoRawMutexCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      ExemptPaths(Options.get("ExemptPaths", kDefaultExemptPaths)),
      ExemptRegex(ExemptPaths) {}

void NoRawMutexCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "ExemptPaths", ExemptPaths);
}

void NoRawMutexCheck::registerMatchers(MatchFinder *Finder) {
  const auto RawSyncType = hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(cxxRecordDecl(hasAnyName(
          "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
          "::std::recursive_timed_mutex", "::std::shared_mutex",
          "::std::shared_timed_mutex", "::std::condition_variable",
          "::std::condition_variable_any", "::std::lock_guard",
          "::std::unique_lock", "::std::scoped_lock", "::std::shared_lock")))));
  // valueDecl covers fields, local/global variables, and parameters.
  // The second arm looks through arrays: `std::mutex shards[16];`.
  Finder->addMatcher(
      valueDecl(anyOf(hasType(RawSyncType),
                      hasType(hasUnqualifiedDesugaredType(
                          arrayType(hasElementType(RawSyncType))))),
                unless(isImplicit()))
          .bind("decl"),
      this);
}

void NoRawMutexCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Decl = Result.Nodes.getNodeAs<ValueDecl>("decl");
  if (Decl == nullptr)
    return;
  if (IsExemptLocation(*Result.SourceManager, Decl->getLocation(), ExemptPaths,
                       ExemptRegex))
    return;
  diag(Decl->getLocation(),
       "raw standard-library synchronization type %0; use the annotated "
       "lsmio::Mutex / lsmio::MutexLock / lsmio::CondVar wrappers from "
       "common/synchronization.h so thread-safety analysis can see the lock")
      << Decl->getType();
}

}  // namespace clang::tidy::lsmio
