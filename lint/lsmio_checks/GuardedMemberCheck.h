// lsmio-guarded-member
//
// In any class that owns an lsmio::Mutex field, every mutable data member
// must either carry a GUARDED_BY / PT_GUARDED_BY annotation or be
// explicitly waived with an `unguarded:` rationale in the comment block
// directly above (or trailing) the member declaration.
//
// Exempt by construction (no annotation or rationale needed):
//   - const-qualified members and references (immutable after init)
//   - the Mutex / CondVar members themselves
//   - std::atomic<T> members (internally synchronized)
//
// The point is that "this member is intentionally outside the lock" is a
// reviewable, greppable decision, not an accident of omission.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::lsmio {

class GuardedMemberCheck : public ClangTidyCheck {
 public:
  GuardedMemberCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  bool HasUnguardedRationale(const SourceManager &SM, const FieldDecl *Field) const;

  const std::string ExemptPaths;
  const std::string RationaleToken;
  llvm::Regex ExemptRegex;
};

}  // namespace clang::tidy::lsmio
