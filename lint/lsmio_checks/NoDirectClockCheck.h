// lsmio-no-direct-clock
//
// Flags direct calls to std::chrono clock sources (system_clock::now,
// steady_clock::now, high_resolution_clock::now) and to
// std::this_thread::sleep_for / sleep_until outside the sanctioned clock
// implementation.
//
// All time in src/ flows through lsmio::SystemClock (common/rate_limiter.h)
// so that rate limiting, stall accounting, and latency measurement can be
// driven by a mock clock in tests. A raw ::now() call is a time source the
// test harness cannot advance.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::lsmio {

class NoDirectClockCheck : public ClangTidyCheck {
 public:
  NoDirectClockCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string ExemptPaths;
  llvm::Regex ExemptRegex;
};

}  // namespace clang::tidy::lsmio
