#include "StatusIgnoreCheck.h"

#include "LsmioCheckCommon.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace clang::tidy::lsmio {

StatusIgnoreCheck::StatusIgnoreCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      ExemptPaths(Options.get("ExemptPaths", "")),
      ExemptRegex(ExemptPaths) {}

void StatusIgnoreCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "ExemptPaths", ExemptPaths);
}

void StatusIgnoreCheck::registerMatchers(MatchFinder *Finder) {
  const auto StatusLike = hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(namedDecl(hasAnyName("::lsmio::Status", "::lsmio::Result")))));
  // explicitCastExpr covers both `(void)s` and `static_cast<void>(s)`.
  Finder->addMatcher(
      explicitCastExpr(hasDestinationType(voidType()),
                       hasSourceExpression(hasType(StatusLike)))
          .bind("cast"),
      this);
}

void StatusIgnoreCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cast = Result.Nodes.getNodeAs<ExplicitCastExpr>("cast");
  if (Cast == nullptr)
    return;
  if (IsExemptLocation(*Result.SourceManager, Cast->getBeginLoc(), ExemptPaths,
                       ExemptRegex))
    return;
  diag(Cast->getBeginLoc(),
       "void-cast discards a Status without observing it; this bypasses the "
       "compile-time check but still aborts under LSMIO_STATUS_DEBUG — call "
       ".IgnoreError() instead");
}

}  // namespace clang::tidy::lsmio
