// lsmio-status-ignore
//
// Flags `(void)`-casts of lsmio::Status or lsmio::Result<T>. A void-cast
// silences the [[nodiscard]] compile-time diagnostic but NOT the
// LSMIO_STATUS_DEBUG runtime tracker — the status still aborts the process
// when it is destroyed unobserved. The sanctioned way to drop an error is
// `status.IgnoreError()`, which both documents the decision and marks the
// obligation satisfied at runtime.
//
// No path exemptions by default: tests and benchmarks must use
// IgnoreError() too, because they run with tracking forced on.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::lsmio {

class StatusIgnoreCheck : public ClangTidyCheck {
 public:
  StatusIgnoreCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string ExemptPaths;
  llvm::Regex ExemptRegex;
};

}  // namespace clang::tidy::lsmio
