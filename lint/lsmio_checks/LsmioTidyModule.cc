// Registers the LSMIO project checks as a loadable clang-tidy module.
//
// Usage: clang-tidy --load=liblsmio_checks.so --checks='lsmio-*' ...
// The build wires this in automatically under -DLSMIO_LINT=ON; see the
// lint-gate logic in cmake/LintGateTest.cmake, which also proves at
// configure time that every check still fires on a seeded violation.
#include "GuardedMemberCheck.h"
#include "NoDirectClockCheck.h"
#include "NoRawMutexCheck.h"
#include "StatusIgnoreCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy::lsmio {

class LsmioModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<NoRawMutexCheck>("lsmio-no-raw-mutex");
    CheckFactories.registerCheck<GuardedMemberCheck>("lsmio-guarded-member");
    CheckFactories.registerCheck<NoDirectClockCheck>("lsmio-no-direct-clock");
    CheckFactories.registerCheck<StatusIgnoreCheck>("lsmio-status-ignore");
  }
};

namespace {
ClangTidyModuleRegistry::Add<LsmioModule> X(  // NOLINT(cert-err58-cpp)
    "lsmio-module", "LSMIO project-specific checks.");
}  // namespace

// Non-zero-initialized anchor the linker cannot dead-strip; keeps the
// registry entry alive when the module is linked statically for testing.
volatile int LsmioModuleAnchorSource = 1;

}  // namespace clang::tidy::lsmio
