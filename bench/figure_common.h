// Shared harness for the paper-figure benchmarks: node-count sweeps on the
// simulated Viking cluster, table-formatted output matching the series the
// paper plots, and peak-ratio summaries for comparison with the paper's
// headline factors (EXPERIMENTS.md records paper-vs-measured).
#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "iorsim/iorsim.h"

namespace lsmio::bench {

/// The node counts the paper sweeps (1..48 on Viking).
inline std::vector<int> NodeCounts() { return {1, 2, 4, 8, 16, 24, 32, 40, 48}; }

/// Per-task payload: large enough that steady-state behaviour dominates,
/// small enough that a full sweep runs in seconds.
inline constexpr uint64_t kBytesPerTask = 24 * MiB;

struct Series {
  std::string name;
  std::map<int, double> bw_by_nodes;  // bytes/s
};

inline iorsim::Workload MakeWorkload(iorsim::Api api, int nodes,
                                     uint64_t block_size, bool collective = false,
                                     bool read = false) {
  iorsim::Workload workload;
  workload.api = api;
  workload.num_tasks = nodes;
  workload.block_size = block_size;
  workload.transfer_size = block_size;  // paper: transfer == block
  workload.segments = static_cast<int>(kBytesPerTask / block_size);
  workload.collective = collective;
  workload.read = read;
  return workload;
}

inline pfs::SimOptions MakeSim(int stripe_count, uint64_t stripe_size) {
  pfs::SimOptions sim;  // Viking cluster defaults
  sim.stripe.stripe_count = stripe_count;
  sim.stripe.stripe_size = stripe_size;
  return sim;
}

inline Series RunSeries(const std::string& name, iorsim::Api api,
                        uint64_t block_size, const pfs::SimOptions& sim,
                        bool collective = false, bool read = false) {
  Series series;
  series.name = name;
  for (const int nodes : NodeCounts()) {
    const iorsim::Workload workload =
        MakeWorkload(api, nodes, block_size, collective, read);
    series.bw_by_nodes[nodes] = RunWorkload(workload, sim).bandwidth;
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, " %s done\n", name.c_str());
  return series;
}

inline void PrintTable(const std::string& figure, const std::string& caption,
                       const std::vector<Series>& series) {
  std::printf("\n%s: %s\n", figure.c_str(), caption.c_str());
  std::printf("%-8s", "nodes");
  for (const auto& s : series) std::printf("%22s", s.name.c_str());
  std::printf("\n");
  for (const int nodes : NodeCounts()) {
    std::printf("%-8d", nodes);
    for (const auto& s : series) {
      std::printf("%16.1f MiB/s", s.bw_by_nodes.at(nodes) / static_cast<double>(MiB));
    }
    std::printf("\n");
  }
}

/// Ratio of two series at the peak node count (the paper quotes factors
/// "as the concurrency peaks at 48").
inline double PeakRatio(const Series& numerator, const Series& denominator) {
  const int peak = NodeCounts().back();
  return numerator.bw_by_nodes.at(peak) / denominator.bw_by_nodes.at(peak);
}

/// Max ratio across all node counts ("by as much as N×").
inline double MaxRatio(const Series& numerator, const Series& denominator) {
  double best = 0;
  for (const int nodes : NodeCounts()) {
    best = std::max(best, numerator.bw_by_nodes.at(nodes) /
                              denominator.bw_by_nodes.at(nodes));
  }
  return best;
}

inline void PrintClaim(const char* what, double measured, const char* paper) {
  std::printf("  %-58s measured %6.1fx   paper %s\n", what, measured, paper);
}

}  // namespace lsmio::bench
