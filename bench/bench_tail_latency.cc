// Tail-latency A/B for the write-stall scheduler: a sustained mixed
// workload (writer threads + reader threads) drives the engine into L0
// pressure while Options::bytes_per_sec caps background I/O — the
// stand-in for a parallel file system slower than the ingest rate. Two
// modes over identical workloads:
//
//   hard_stall  l0_slowdown_writes_trigger = 0: writers run full speed
//               into the L0 stop trigger and park there until compaction
//               catches up — the classic write-stall sawtooth.
//   graduated   the soft trigger paces writes with per-batch delays
//               (WriteController) before the cliff, trading a little
//               throughput for a much flatter tail.
//
// The interesting output is the write-latency distribution (engine
// histograms, stall time included): graduated backpressure should cut p99
// by >= 2x while keeping >= 90% of hard-stall throughput, because both
// modes are ultimately bound by the same background-I/O budget.
//
// JSON goes to stdout (redirect into bench_results/tail_latency.json);
// progress to stderr. CI shrinks the run via LSMIO_BENCH_* overrides.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/units.h"
#include "lsm/db.h"
#include "vfs/posix_vfs.h"

namespace {

using namespace lsmio;

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr, "ignoring %s=%s (want a positive integer)\n", name, v);
    return fallback;
  }
  return parsed;
}

const int kTotalOps = static_cast<int>(EnvLong("LSMIO_BENCH_OPS", 8000));
const size_t kValueBytes =
    static_cast<size_t>(EnvLong("LSMIO_BENCH_VALUE_BYTES", 4 * KiB));
const int kWriters = static_cast<int>(EnvLong("LSMIO_BENCH_WRITERS", 4));
const int kReaders = static_cast<int>(EnvLong("LSMIO_BENCH_READERS", 2));
const int kShards = static_cast<int>(EnvLong("LSMIO_BENCH_SHARDS", 1));
const uint64_t kBgBytesPerSec = static_cast<uint64_t>(
    EnvLong("LSMIO_BENCH_BG_BYTES_PER_SEC", 24 * MiB));

struct ModeResult {
  std::string mode;
  double seconds = 0;
  double puts_per_sec = 0;
  double mib_per_sec = 0;
  lsm::DbStats stats;
};

ModeResult RunMode(const std::string& mode, int slowdown_trigger,
                   const std::string& dir) {
  lsm::Options options;
  options.disable_compaction = false;
  options.disable_wal = true;  // checkpoint config: latency is memtable+stall
  options.write_buffer_size = 256 * KiB;
  options.max_write_buffer_number = 4;
  options.background_threads = std::max(2, kShards);
  options.num_shards = kShards;
  options.l0_compaction_trigger = 4;
  // Wide soft window: L0 climbs for the full duration of one (rate-capped)
  // compaction cycle, so the ramp needs enough headroom that pressure stays
  // well below 1.0 — otherwise every batch pays the floor-rate delay and
  // pacing just re-creates the tail it was meant to remove.
  options.l0_stop_writes_trigger = 24;
  options.l0_slowdown_writes_trigger = slowdown_trigger;
  options.delayed_write_rate = 16 * MiB;
  // The shared background budget is what makes flush+compaction slower
  // than ingest, so both modes actually hit their triggers.
  options.bytes_per_sec = kBgBytesPerSec;

  lsm::DB::Destroy(options, dir).IgnoreError();  // scratch-dir cleanup; Open surfaces real trouble
  std::unique_ptr<lsm::DB> db;
  auto s = lsm::DB::Open(options, dir, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", dir.c_str(),
                 s.ToString().c_str());
    std::exit(1);
  }

  const int ops_per_writer = kTotalOps / kWriters;
  const std::string value(kValueBytes, 'v');
  std::atomic<bool> writers_done{false};
  std::atomic<long> written{0};
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < ops_per_writer; ++i) {
        const std::string key =
            "w" + std::to_string(t) + ".k" + std::to_string(i);
        const auto put = db->Put({}, key, value);
        if (!put.ok()) {
          std::fprintf(stderr, "put failed: %s\n", put.ToString().c_str());
          std::exit(1);
        }
        written.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Readers poll keys already written, sustaining a mixed workload for the
  // whole run (they stop when the writers finish).
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x9e3779b9u + static_cast<uint64_t>(t));
      std::string out;
      while (!writers_done.load(std::memory_order_relaxed)) {
        const long high = written.load(std::memory_order_relaxed);
        if (high == 0) continue;
        const long pick =
            static_cast<long>(rng.Uniform(static_cast<uint64_t>(high)));
        const std::string key = "w" + std::to_string(pick % kWriters) + ".k" +
                                std::to_string(pick / kWriters);
        const auto get = db->Get({}, key, &out);
        if (!get.ok() && !get.IsNotFound()) {
          std::fprintf(stderr, "get failed: %s\n", get.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  writers_done.store(true);
  for (int t = kWriters; t < kWriters + kReaders; ++t) threads[t].join();

  ModeResult r;
  r.mode = mode;
  r.seconds = seconds;
  const double total_ops = static_cast<double>(ops_per_writer) * kWriters;
  r.puts_per_sec = total_ops / seconds;
  r.mib_per_sec = total_ops * static_cast<double>(kValueBytes) /
                  static_cast<double>(MiB) / seconds;
  r.stats = db->GetStats();

  db.reset();
  lsm::DB::Destroy(options, dir).IgnoreError();  // scratch-dir cleanup; Open surfaces real trouble
  return r;
}

void PrintMode(const ModeResult& r, bool last) {
  const Histogram& w = r.stats.write_latency;
  const Histogram& g = r.stats.get_latency;
  std::printf("    {\"mode\": \"%s\", \"seconds\": %.2f, "
              "\"puts_per_sec\": %.1f, \"mib_per_sec\": %.2f,\n",
              r.mode.c_str(), r.seconds, r.puts_per_sec, r.mib_per_sec);
  std::printf("     \"write_latency_us\": {\"count\": %llu, \"p50\": %.1f, "
              "\"p95\": %.1f, \"p99\": %.1f, \"max\": %.1f},\n",
              static_cast<unsigned long long>(w.count()), w.Percentile(50),
              w.Percentile(95), w.Percentile(99), w.max());
  std::printf("     \"get_latency_us\": {\"count\": %llu, \"p50\": %.1f, "
              "\"p99\": %.1f},\n",
              static_cast<unsigned long long>(g.count()), g.Percentile(50),
              g.Percentile(99));
  std::printf("     \"stalls\": {\"write_stall_micros\": %llu, "
              "\"stall_memtable_micros\": %llu, \"stall_l0_micros\": %llu, "
              "\"slowdown_delay_micros\": %llu, \"slowdown_writes\": %llu},\n",
              static_cast<unsigned long long>(r.stats.write_stall_micros),
              static_cast<unsigned long long>(r.stats.stall_memtable_micros),
              static_cast<unsigned long long>(r.stats.stall_l0_micros),
              static_cast<unsigned long long>(r.stats.slowdown_delay_micros),
              static_cast<unsigned long long>(r.stats.slowdown_writes));
  std::printf("     \"rate_limiter\": {\"flush_bytes\": %llu, "
              "\"compaction_bytes\": %llu, \"wait_micros\": %llu}}%s\n",
              static_cast<unsigned long long>(r.stats.rate_limited_bytes_flush),
              static_cast<unsigned long long>(
                  r.stats.rate_limited_bytes_compaction),
              static_cast<unsigned long long>(r.stats.rate_limiter_wait_micros),
              last ? "" : ",");
}

}  // namespace

int main() {
  const char* dir_env = std::getenv("LSMIO_BENCH_DIR");
  const std::string dir = (dir_env != nullptr && *dir_env != '\0')
                              ? std::string(dir_env) + "/lsmio_bench_tail_latency"
                              : "/tmp/lsmio_bench_tail_latency";

  std::fprintf(stderr, "hard-stall mode (slowdown trigger off)... ");
  std::fflush(stderr);
  const ModeResult hard = RunMode("hard_stall", /*slowdown_trigger=*/0, dir);
  std::fprintf(stderr, "%8.0f puts/s, write p99 %.0f us\n", hard.puts_per_sec,
               hard.stats.write_latency.Percentile(99));

  std::fprintf(stderr, "graduated mode   (soft trigger 5)...    ");
  std::fflush(stderr);
  const ModeResult grad = RunMode("graduated", /*slowdown_trigger=*/5, dir);
  std::fprintf(stderr, "%8.0f puts/s, write p99 %.0f us\n", grad.puts_per_sec,
               grad.stats.write_latency.Percentile(99));

  const double hard_p99 = hard.stats.write_latency.Percentile(99);
  const double grad_p99 = grad.stats.write_latency.Percentile(99);
  const double p99_improvement = grad_p99 > 0 ? hard_p99 / grad_p99 : 0;
  const double throughput_ratio =
      hard.puts_per_sec > 0 ? grad.puts_per_sec / hard.puts_per_sec : 0;

  std::printf("{\n  \"bench\": \"tail_latency\",\n");
  std::printf("  \"total_ops\": %d,\n  \"value_bytes\": %zu,\n", kTotalOps,
              kValueBytes);
  std::printf("  \"writers\": %d,\n  \"readers\": %d,\n  \"num_shards\": %d,\n",
              kWriters, kReaders, kShards);
  std::printf("  \"bg_bytes_per_sec\": %llu,\n",
              static_cast<unsigned long long>(kBgBytesPerSec));
  std::printf("  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"modes\": [\n");
  PrintMode(hard, /*last=*/false);
  PrintMode(grad, /*last=*/true);
  std::printf("  ],\n");
  std::printf("  \"p99_improvement\": %.2f,\n", p99_improvement);
  std::printf("  \"throughput_ratio\": %.3f\n}\n", throughput_ratio);

  std::fprintf(stderr,
               "\ngraduated vs hard-stall: write p99 %.0f us -> %.0f us "
               "(%.1fx better, target >= 2x) at %.1f%% of hard-stall "
               "throughput (target >= 90%%)\n",
               hard_p99, grad_p99, p99_improvement, throughput_ratio * 100.0);
  return 0;
}
