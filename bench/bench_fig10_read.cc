// Figure 10: read benchmarks. ADIOS2 reads best; LSMIO trails ADIOS2 by a
// modest margin but beats the IOR baseline; collective reads hurt IOR;
// HDF5 trails everything.
//
// Besides the table, emits a JSON document (to the path given as argv[1],
// or stdout when absent) for bench_results/.
#include <cstdio>

#include "figure_common.h"

namespace {

void EmitJson(std::FILE* out, const std::vector<lsmio::bench::Series>& series,
              double average_gap) {
  using lsmio::bench::NodeCounts;
  std::fprintf(out, "{\n  \"bench\": \"fig10_read\",\n");
  std::fprintf(out, "  \"stripe_count\": 4,\n  \"block_bytes\": %d,\n", 64 * 1024);
  std::fprintf(out, "  \"series\": [\n");
  for (size_t i = 0; i < series.size(); ++i) {
    std::fprintf(out, "    {\"name\": \"%s\", \"bw_bytes_per_sec\": {",
                 series[i].name.c_str());
    bool first = true;
    for (const int nodes : NodeCounts()) {
      std::fprintf(out, "%s\"%d\": %.0f", first ? "" : ", ", nodes,
                   series[i].bw_by_nodes.at(nodes));
      first = false;
    }
    std::fprintf(out, "}}%s\n", i + 1 < series.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"lsmio_below_adios2_average_gap\": %.3f\n}\n",
               average_gap);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsmio;
  using namespace lsmio::bench;

  constexpr uint64_t kBlock = 64 * KiB;
  const pfs::SimOptions sim = MakeSim(4, kBlock);

  std::vector<Series> series;
  series.push_back(RunSeries("IOR", iorsim::Api::kPosix, kBlock, sim,
                             /*collective=*/false, /*read=*/true));
  series.push_back(RunSeries("IOR+coll", iorsim::Api::kPosix, kBlock, sim,
                             /*collective=*/true, /*read=*/true));
  series.push_back(RunSeries("HDF5", iorsim::Api::kH5l, kBlock, sim, false, true));
  series.push_back(RunSeries("ADIOS2", iorsim::Api::kA2, kBlock, sim, false, true));
  series.push_back(
      RunSeries("Plugin", iorsim::Api::kA2Lsmio, kBlock, sim, false, true));
  series.push_back(RunSeries("LSMIO", iorsim::Api::kLsmio, kBlock, sim, false, true));

  PrintTable("Figure 10", "Read bandwidth (stripe 4, 64K)", series);

  const Series& ior = series[0];
  const Series& ior_coll = series[1];
  const Series& hdf = series[2];
  const Series& a2 = series[3];
  const Series& plugin = series[4];
  const Series& lsmio = series[5];

  // Average ADIOS2-over-LSMIO gap across the sweep (paper: 23.3% average).
  double gap_sum = 0;
  for (const int nodes : NodeCounts()) {
    gap_sum += 1.0 - lsmio.bw_by_nodes.at(nodes) / a2.bw_by_nodes.at(nodes);
  }
  const double average_gap = gap_sum / static_cast<double>(NodeCounts().size());

  std::printf("\nHeadline comparisons (paper section 4.5):\n");
  PrintClaim("LSMIO over IOR at 48 nodes", PeakRatio(lsmio, ior), "about 5.5x");
  PrintClaim("IOR plain over IOR collective (max ratio; collective hurts reads)",
             MaxRatio(ior, ior_coll), "up to 18.6x");
  PrintClaim("IOR over HDF5 at 48 nodes", PeakRatio(ior, hdf), "up to 125.2x");
  PrintClaim("LSMIO over HDF5 at 48 nodes", PeakRatio(lsmio, hdf), "up to 687.2x");
  std::printf("  %-58s measured %5.1f%%   paper ~23.3%%\n",
              "LSMIO below ADIOS2 on reads (average gap)", average_gap * 100);
  PrintClaim("LSMIO direct over plugin on reads at 48 nodes",
             PeakRatio(lsmio, plugin), ">1x (same pattern as writes)");

  if (argc > 1) {
    std::FILE* out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", argv[1]);
      return 1;
    }
    EmitJson(out, series, average_gap);
    std::fclose(out);
  } else {
    std::printf("\n");
    EmitJson(stdout, series, average_gap);
  }
  return 0;
}
