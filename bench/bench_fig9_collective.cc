// Figure 9: collective I/O. Two-phase collective writes rescue the IOR
// baseline (up to 12.1x), help HDF5 only at low concurrency (and hurt at
// high concurrency), while LSMIO still beats IOR+collective at peak.
#include "figure_common.h"

int main() {
  using namespace lsmio;
  using namespace lsmio::bench;

  constexpr uint64_t kBlock = 64 * KiB;
  const pfs::SimOptions sim = MakeSim(4, kBlock);

  std::vector<Series> series;
  series.push_back(RunSeries("IOR", iorsim::Api::kPosix, kBlock, sim));
  series.push_back(
      RunSeries("IOR+coll", iorsim::Api::kPosix, kBlock, sim, /*collective=*/true));
  series.push_back(RunSeries("HDF5", iorsim::Api::kH5l, kBlock, sim));
  series.push_back(
      RunSeries("HDF5+coll", iorsim::Api::kH5l, kBlock, sim, /*collective=*/true));
  series.push_back(RunSeries("LSMIO", iorsim::Api::kLsmio, kBlock, sim));

  PrintTable("Figure 9",
             "Collective I/O: IOR and HDF5 with collective vs LSMIO (stripe 4, 64K)",
             series);

  const Series& ior = series[0];
  const Series& ior_coll = series[1];
  const Series& hdf = series[2];
  const Series& hdf_coll = series[3];
  const Series& lsmio = series[4];

  // HDF5 collective at low vs high concurrency.
  const double hdf_coll_low =
      hdf_coll.bw_by_nodes.at(2) / hdf.bw_by_nodes.at(2);
  const double hdf_coll_high =
      hdf.bw_by_nodes.at(48) / hdf_coll.bw_by_nodes.at(48);

  std::printf("\nHeadline comparisons (paper section 4.4):\n");
  PrintClaim("Collective over plain IOR (max ratio)", MaxRatio(ior_coll, ior),
             "up to 12.1x");
  PrintClaim("HDF5 collective gain at low concurrency (2 nodes)", hdf_coll_low,
             "about 2x");
  PrintClaim("HDF5 plain over collective at 48 nodes (collective hurts)",
             hdf_coll_high, "up to 2.5x");
  PrintClaim("LSMIO over IOR+collective at 48 nodes", PeakRatio(lsmio, ior_coll),
             "up to 2.2x");
  return 0;
}
