// Figure 1 (introduction): compute vs I/O bandwidth growth of the #1
// TOP500 system from the PetaFLOP era (Roadrunner, 2008) to the ExaFLOP
// era (Frontier, 2022), with doubling-time fits — regenerated from the
// figures quoted in the paper's introduction.
#include <cmath>
#include <cstdio>
#include <vector>

namespace {

struct SystemPoint {
  int year;
  const char* system;
  double pflops;     // headline compute, PetaFLOP/s
  double io_gbps;    // parallel file system bandwidth, GB/s
};

// Data points the paper's introduction cites (Roadrunner 2008: 1 PFLOP/s,
// 216 GB/s; Frontier 2022: ~1102 PFLOP/s GPU era peak, 10 TB/s SSD tier)
// with intermediate #1 systems for the trend lines.
const std::vector<SystemPoint> kSystems = {
    {2008, "Roadrunner", 1.0, 216},
    {2010, "Tianhe-1A", 2.57, 160},
    {2012, "Titan", 17.6, 1400},
    {2013, "Tianhe-2", 33.9, 1000},
    {2016, "Sunway TaihuLight", 93.0, 288},
    {2018, "Summit", 143.5, 2500},
    {2020, "Fugaku", 442.0, 1500},
    {2022, "Frontier (SSD tier)", 1102.0, 10000},
};

double DoublingYears(double start_value, double end_value, int years) {
  return static_cast<double>(years) * std::log(2.0) /
         std::log(end_value / start_value);
}

}  // namespace

int main() {
  std::printf("Figure 1: CPU and I/O performance growth, PetaFLOP to ExaFLOP era\n");
  std::printf("%-6s %-22s %14s %14s\n", "year", "system", "PFLOP/s", "I/O GB/s");
  for (const auto& point : kSystems) {
    std::printf("%-6d %-22s %14.2f %14.0f\n", point.year, point.system,
                point.pflops, point.io_gbps);
  }

  const auto& first = kSystems.front();
  const auto& last = kSystems.back();
  const int span = last.year - first.year;
  const double compute_growth = last.pflops / first.pflops;
  const double io_growth = last.io_gbps / first.io_gbps;

  std::printf("\nGrowth %d-%d:\n", first.year, last.year);
  std::printf("  compute: %.1fx  (paper: 1074.1x; doubling every %.1f months)\n",
              compute_growth, DoublingYears(first.pflops, last.pflops, span) * 12);
  std::printf("  I/O:     %.1fx  (paper: 46.3x SSD tier; doubling every %.1f years)\n",
              io_growth, DoublingYears(first.io_gbps, last.io_gbps, span));
  std::printf("  gap:     %.0fx more compute growth than I/O growth\n",
              compute_growth / io_growth);
  return 0;
}
