// google-benchmark microbenchmarks of the LSM engine's building blocks:
// the real-time costs behind the virtual CostModel constants used in the
// figure benchmarks (EXPERIMENTS.md documents the mapping).
#include <benchmark/benchmark.h>

#include <memory>

#include "common/crc32c.h"
#include "common/random.h"
#include "common/units.h"
#include "lsm/arena.h"
#include "lsm/compression.h"
#include "lsm/db.h"
#include "lsm/filter_policy.h"
#include "lsm/memtable.h"
#include "lsm/skiplist.h"
#include "vfs/mem_vfs.h"

namespace {

using namespace lsmio;
using namespace lsmio::lsm;

void BM_Crc32c(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::string data(n, '\0');
  Rng rng(1);
  rng.Fill(data.data(), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), n));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_LzLiteCompress(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  // Half-compressible data: realistic checkpoint payloads.
  std::string data(n, '\0');
  Rng rng(2);
  for (size_t i = 0; i < n; i += 64) {
    if (rng.Bernoulli(0.5)) rng.Fill(data.data() + i, std::min<size_t>(64, n - i));
  }
  std::string out;
  for (auto _ : state) {
    LzLiteCompress(data, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_LzLiteCompress)->Arg(65536)->Arg(1 << 20);

void BM_LzLiteDecompress(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::string data(n, 'r');
  std::string compressed;
  LzLiteCompress(data, &compressed);
  std::string out;
  for (auto _ : state) {
    LzLiteDecompress(compressed, &out).IgnoreError();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_LzLiteDecompress)->Arg(65536)->Arg(1 << 20);

void BM_SkipListInsert(benchmark::State& state) {
  struct Cmp {
    int operator()(uint64_t a, uint64_t b) const {
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  };
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    auto arena = std::make_unique<Arena>();
    SkipList<uint64_t, Cmp> list(Cmp{}, arena.get());
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) list.Insert(rng.Next());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkipListInsert)->Arg(10000);

void BM_MemTableAdd(benchmark::State& state) {
  const size_t value_size = static_cast<size_t>(state.range(0));
  InternalKeyComparator icmp(BytewiseComparator());
  const std::string value(value_size, 'v');
  for (auto _ : state) {
    state.PauseTiming();
    MemTable* mem = new MemTable(icmp);
    mem->Ref();
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      mem->Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue,
               "key" + std::to_string(i), value);
    }
    state.PauseTiming();
    mem->Unref();
    state.ResumeTiming();
  }
  state.SetBytesProcessed(state.iterations() * 1000 *
                          static_cast<int64_t>(value_size));
}
BENCHMARK(BM_MemTableAdd)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BloomFilterCreate(benchmark::State& state) {
  auto policy = std::unique_ptr<const FilterPolicy>(NewBloomFilterPolicy(10));
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < state.range(0); ++i) {
    key_storage.push_back("bloom-key-" + std::to_string(i));
  }
  for (const auto& key : key_storage) keys.emplace_back(key);
  std::string filter;
  for (auto _ : state) {
    filter.clear();
    policy->CreateFilter(keys.data(), static_cast<int>(keys.size()), &filter);
    benchmark::DoNotOptimize(filter.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomFilterCreate)->Arg(10000);

void BM_DbPut(benchmark::State& state) {
  const size_t value_size = static_cast<size_t>(state.range(0));
  vfs::MemVfs fs;
  Options options;
  options.vfs = &fs;
  options.disable_wal = true;
  options.disable_compaction = true;
  std::unique_ptr<DB> db;
  DB::Open(options, "/bm", &db).IgnoreError();  // bench scratch store
  const std::string value(value_size, 'v');
  uint64_t key = 0;
  for (auto _ : state) {
    db->Put({}, "key" + std::to_string(key++), value).IgnoreError();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(value_size));
}
BENCHMARK(BM_DbPut)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_DbGet(benchmark::State& state) {
  vfs::MemVfs fs;
  Options options;
  options.vfs = &fs;
  options.disable_wal = true;
  options.disable_compaction = true;
  std::unique_ptr<DB> db;
  DB::Open(options, "/bm", &db).IgnoreError();  // bench scratch store
  constexpr int kKeys = 2000;
  const std::string value(4096, 'v');
  for (int i = 0; i < kKeys; ++i) {
    db->Put({}, "key" + std::to_string(i), value).IgnoreError();
  }
  db->FlushMemTable(true).IgnoreError();  // force table reads, not memtable hits
  Rng rng(7);
  std::string out;
  for (auto _ : state) {
    db->Get({}, "key" + std::to_string(rng.Uniform(kKeys)), &out).IgnoreError();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbGet);

}  // namespace

BENCHMARK_MAIN();
