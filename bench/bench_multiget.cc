// Batched-restore microbenchmark: per-key Get vs MultiGet over a real
// on-disk store at batch sizes {1, 16, 64, 256}. Each batch is a
// sequential run of keys (run starts visited in shuffled order) — the
// access pattern of a checkpoint restore, which reads back consecutive
// chunk/block keys of each variable.
//
// "cold" uses the paper's checkpoint store configuration (block cache
// disabled), so every data block comes off the VFS: MultiGet resolves the
// batch with one mutex acquisition, one index walk per table, one decode
// per block (not per key), and coalesces adjacent block reads into single
// VFS reads. "warm" re-reads through a block-cache-enabled handle whose
// cache already holds every block.
// Emits a JSON document on stdout; progress goes to stderr.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "lsm/db.h"
#include "vfs/posix_vfs.h"

namespace {

using namespace lsmio;

constexpr int kKeys = 8192;
constexpr size_t kValueBytes = 2 * KiB;
constexpr int kL0Files = 8;

std::string KeyOf(int i) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "key%08d", i);
  return buf;
}

lsm::Options BenchOptions(bool with_cache) {
  lsm::Options options;
  options.disable_compaction = true;  // the checkpoint config: L0 only
  options.disable_cache = !with_cache;
  options.block_size = 4 * KiB;
  options.write_buffer_size = 64 * MiB;  // flushes are explicit below
  return options;
}

// Writes kKeys values split across kL0Files L0 files.
bool Fill(const std::string& dir) {
  lsm::Options options = BenchOptions(/*with_cache=*/false);
  lsm::DB::Destroy(options, dir).IgnoreError();  // scratch-dir cleanup; Open surfaces real trouble
  std::unique_ptr<lsm::DB> db;
  if (!lsm::DB::Open(options, dir, &db).ok()) return false;

  std::string value(kValueBytes, 'v');
  Rng rng(7);
  rng.Fill(value.data(), value.size());
  for (int i = 0; i < kKeys; ++i) {
    if (!db->Put({}, KeyOf(i), value).ok()) return false;
    if ((i + 1) % (kKeys / kL0Files) == 0 &&
        !db->FlushMemTable(/*wait=*/true).ok()) {
      return false;
    }
  }
  return db->FlushMemTable(/*wait=*/true).ok();
}

// The restore read order for a given batch size: the keyspace split into
// sequential runs of `batch` keys, with the runs visited in a shuffled
// (but deterministic) order.
std::vector<std::string> RestoreOrder(int batch) {
  std::vector<int> starts;
  for (int s = 0; s < kKeys; s += batch) starts.push_back(s);
  Rng rng(42);
  for (size_t i = starts.size() - 1; i > 0; --i) {
    std::swap(starts[i], starts[rng.Next() % static_cast<uint64_t>(i + 1)]);
  }
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (const int start : starts) {
    for (int i = start; i < std::min(kKeys, start + batch); ++i) {
      keys.push_back(KeyOf(i));
    }
  }
  return keys;
}

double KeysPerSec(std::chrono::steady_clock::time_point start, int keys) {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return seconds > 0 ? keys / seconds : 0;
}

// One pass over all keys in batches of `batch`, via per-key Get.
double RunGet(lsm::DB* db, const std::vector<std::string>& keys, int batch) {
  std::string value;
  const auto start = std::chrono::steady_clock::now();
  for (size_t base = 0; base < keys.size(); base += batch) {
    const size_t end = std::min(keys.size(), base + batch);
    for (size_t i = base; i < end; ++i) {
      if (!db->Get({}, keys[i], &value).ok()) return 0;
    }
  }
  return KeysPerSec(start, static_cast<int>(keys.size()));
}

// One pass over all keys in batches of `batch`, via MultiGet.
double RunMultiGet(lsm::DB* db, const std::vector<std::string>& keys, int batch) {
  std::vector<std::string> values;
  std::vector<Status> statuses;
  const auto start = std::chrono::steady_clock::now();
  for (size_t base = 0; base < keys.size(); base += batch) {
    const size_t end = std::min(keys.size(), base + batch);
    std::vector<Slice> slices;
    slices.reserve(end - base);
    for (size_t i = base; i < end; ++i) slices.emplace_back(keys[i]);
    if (!db->MultiGet({}, slices, &values, &statuses).ok()) return 0;
    for (const Status& s : statuses) {
      if (!s.ok()) return 0;
    }
  }
  return KeysPerSec(start, static_cast<int>(keys.size()));
}

struct BatchResult {
  int batch = 0;
  double get_cold = 0, multiget_cold = 0;
  double get_warm = 0, multiget_warm = 0;
  uint64_t coalesced_reads = 0;
};

}  // namespace

int main() {
  const std::string dir =
      "/tmp/lsmio_bench_multiget." + std::to_string(::getpid());
  if (!Fill(dir)) {
    std::fprintf(stderr, "fill failed\n");
    return 1;
  }

  std::vector<BatchResult> results;
  for (const int batch : {1, 16, 64, 256}) {
    BatchResult r;
    r.batch = batch;
    const std::vector<std::string> keys = RestoreOrder(batch);

    // Cold: the paper's checkpoint store config has no block cache, so a
    // fresh open reads every data block from the VFS.
    {
      std::unique_ptr<lsm::DB> db;
      if (!lsm::DB::Open(BenchOptions(/*with_cache=*/false), dir, &db).ok()) {
        return 1;
      }
      r.get_cold = RunGet(db.get(), keys, batch);
    }
    {
      std::unique_ptr<lsm::DB> db;
      if (!lsm::DB::Open(BenchOptions(/*with_cache=*/false), dir, &db).ok()) {
        return 1;
      }
      r.multiget_cold = RunMultiGet(db.get(), keys, batch);
      r.coalesced_reads = db->GetStats().multiget_coalesced_reads;
    }

    // Warm: a block-cache-enabled handle, second pass fully cached.
    std::unique_ptr<lsm::DB> db;
    if (!lsm::DB::Open(BenchOptions(/*with_cache=*/true), dir, &db).ok()) {
      return 1;
    }
    RunGet(db.get(), keys, batch);  // populate the cache
    r.get_warm = RunGet(db.get(), keys, batch);
    r.multiget_warm = RunMultiGet(db.get(), keys, batch);

    std::fprintf(stderr,
                 "batch %3d: cold get %8.0f k/s, cold mget %8.0f k/s (%.2fx); "
                 "warm get %8.0f k/s, warm mget %8.0f k/s (%.2fx)\n",
                 batch, r.get_cold, r.multiget_cold,
                 r.get_cold > 0 ? r.multiget_cold / r.get_cold : 0, r.get_warm,
                 r.multiget_warm,
                 r.get_warm > 0 ? r.multiget_warm / r.get_warm : 0);
    results.push_back(r);
  }
  lsm::DB::Destroy(BenchOptions(/*with_cache=*/false), dir).IgnoreError();  // scratch-dir cleanup

  double speedup64 = 0;
  std::printf("{\n  \"bench\": \"multiget\",\n");
  std::printf("  \"keys\": %d,\n  \"value_bytes\": %zu,\n  \"l0_files\": %d,\n",
              kKeys, kValueBytes, kL0Files);
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BatchResult& r = results[i];
    const double cold_speedup = r.get_cold > 0 ? r.multiget_cold / r.get_cold : 0;
    if (r.batch == 64) speedup64 = cold_speedup;
    std::printf("    {\"batch\": %d, "
                "\"cold_get_keys_per_sec\": %.0f, "
                "\"cold_multiget_keys_per_sec\": %.0f, "
                "\"cold_speedup\": %.2f, "
                "\"warm_get_keys_per_sec\": %.0f, "
                "\"warm_multiget_keys_per_sec\": %.0f, "
                "\"warm_speedup\": %.2f, "
                "\"coalesced_reads\": %llu}%s\n",
                r.batch, r.get_cold, r.multiget_cold, cold_speedup, r.get_warm,
                r.multiget_warm,
                r.get_warm > 0 ? r.multiget_warm / r.get_warm : 0,
                static_cast<unsigned long long>(r.coalesced_reads),
                i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n  \"cold_speedup_at_64\": %.2f\n}\n", speedup64);

  std::fprintf(stderr, "cold speedup at batch 64: %.2fx (target >= 1.5x)\n",
               speedup64);
  return speedup64 >= 1.5 ? 0 : 2;
}
