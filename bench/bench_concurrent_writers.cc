// Concurrent-writer sweep: 1/2/4/8 writer threads, sync WAL, with and
// without group commit. The group-commit path batches concurrent writers
// into one WAL append + fsync, so aggregate throughput should scale with
// threads instead of serializing behind the global mutex (seed path).
// Emits a JSON document on stdout (alongside the figure benches' tables);
// progress goes to stderr.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "lsm/db.h"
#include "vfs/posix_vfs.h"

namespace {

using namespace lsmio;

// Defaults measure a real workload; CI overrides them via the environment
// (LSMIO_BENCH_OPS / LSMIO_BENCH_VALUE_BYTES / LSMIO_BENCH_MAX_THREADS) to
// get a seconds-long smoke run that still exercises every code path.
long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr, "ignoring %s=%s (want a positive integer)\n", name, v);
    return fallback;
  }
  return parsed;
}

const int kTotalOps =
    static_cast<int>(EnvLong("LSMIO_BENCH_OPS", 1600));  // split across threads
const size_t kValueBytes =
    static_cast<size_t>(EnvLong("LSMIO_BENCH_VALUE_BYTES", 4 * KiB));
const int kMaxThreads = static_cast<int>(EnvLong("LSMIO_BENCH_MAX_THREADS", 8));

struct RunResult {
  int threads = 0;
  bool group_commit = false;
  double puts_per_sec = 0;
  double mib_per_sec = 0;
  uint64_t group_commit_batches = 0;
  uint64_t write_stall_micros = 0;
};

RunResult RunOnce(int threads, bool group_commit, const std::string& dir) {
  lsm::Options options;
  options.sync_writes = true;  // every write group pays one fsync
  options.disable_compaction = true;
  options.enable_group_commit = group_commit;
  options.background_threads = 2;
  options.max_write_buffer_number = 4;
  options.write_buffer_size = 8 * MiB;

  lsm::DB::Destroy(options, dir);
  std::unique_ptr<lsm::DB> db;
  auto s = lsm::DB::Open(options, dir, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", dir.c_str(), s.ToString().c_str());
    std::exit(1);
  }

  const int ops_per_thread = kTotalOps / threads;
  const std::string value(kValueBytes, 'w');
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> writers;
  writers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + ".k" + std::to_string(i);
        const auto put = db->Put({}, key, value);
        if (!put.ok()) {
          std::fprintf(stderr, "put failed: %s\n", put.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const lsm::DbStats stats = db->GetStats();

  RunResult r;
  r.threads = threads;
  r.group_commit = group_commit;
  const double total_ops = static_cast<double>(ops_per_thread) * threads;
  r.puts_per_sec = total_ops / seconds;
  r.mib_per_sec = total_ops * static_cast<double>(kValueBytes) /
                  static_cast<double>(MiB) / seconds;
  r.group_commit_batches = stats.group_commit_batches;
  r.write_stall_micros = stats.write_stall_micros;

  db.reset();
  lsm::DB::Destroy(options, dir);
  return r;
}

double At(const std::vector<RunResult>& results, int threads, bool group_commit) {
  for (const RunResult& r : results) {
    if (r.threads == threads && r.group_commit == group_commit) {
      return r.puts_per_sec;
    }
  }
  return 0;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/lsmio_bench_concurrent_writers";
  std::vector<RunResult> results;

  for (const bool group_commit : {false, true}) {
    for (const int threads : {1, 2, 4, 8}) {
      if (threads > kMaxThreads) continue;
      std::fprintf(stderr, "%-14s %d thread(s)... ",
                   group_commit ? "group-commit" : "serialized", threads);
      std::fflush(stderr);
      results.push_back(RunOnce(threads, group_commit, dir));
      std::fprintf(stderr, "%8.0f puts/s (%6.1f MiB/s)\n",
                   results.back().puts_per_sec, results.back().mib_per_sec);
    }
  }

  std::printf("{\n  \"bench\": \"concurrent_writers\",\n");
  std::printf("  \"sync_wal\": true,\n  \"value_bytes\": %zu,\n  \"total_ops\": %d,\n",
              kValueBytes, kTotalOps);
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::printf("    {\"threads\": %d, \"group_commit\": %s, "
                "\"puts_per_sec\": %.1f, \"mib_per_sec\": %.2f, "
                "\"group_commit_batches\": %llu, \"write_stall_micros\": %llu}%s\n",
                r.threads, r.group_commit ? "true" : "false", r.puts_per_sec,
                r.mib_per_sec,
                static_cast<unsigned long long>(r.group_commit_batches),
                static_cast<unsigned long long>(r.write_stall_micros),
                i + 1 < results.size() ? "," : "");
  }
  // Compare at the widest concurrency actually run (CI caps the sweep).
  const int peak = std::min(4, kMaxThreads);
  const double speedup = At(results, peak, true) / At(results, peak, false);
  const double single_ratio = At(results, 1, true) / At(results, 1, false);
  std::printf("  ],\n  \"speedup_threads\": %d,\n  \"speedup\": %.2f,\n", peak,
              speedup);
  std::printf("  \"single_writer_ratio\": %.2f\n}\n", single_ratio);

  std::fprintf(stderr,
               "\ngroup commit at %d threads: %.2fx the serialized path "
               "(target >= 2x at 4); single-writer ratio %.2f (target > 0.95)\n",
               peak, speedup, single_ratio);
  return 0;
}
