// Concurrent-writer sweep: 1..16 writer threads, sync WAL, with and
// without group commit, plus a shard-scaling sweep (num_shards 1/2/4/8 at
// the widest thread count). The group-commit path batches concurrent
// writers into one WAL append + fsync per shard, so aggregate throughput
// should scale with threads instead of serializing behind the global
// mutex (seed path); sharding multiplies the independent commit queues,
// so sync-WAL throughput should scale again with shard count.
// Emits a JSON document on stdout (alongside the figure benches' tables);
// progress goes to stderr. The scaling targets assume a multi-core host
// whose fsyncs do not serialize (a parallel file system, or per-file
// commit); the JSON records host_cpus so single-core / ext4-journal
// results are interpretable.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "lsm/db.h"
#include "vfs/posix_vfs.h"

namespace {

using namespace lsmio;

// Defaults measure a real workload; CI overrides them via the environment
// (LSMIO_BENCH_OPS / LSMIO_BENCH_VALUE_BYTES / LSMIO_BENCH_MAX_THREADS) to
// get a seconds-long smoke run that still exercises every code path.
long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr, "ignoring %s=%s (want a positive integer)\n", name, v);
    return fallback;
  }
  return parsed;
}

const int kTotalOps =
    static_cast<int>(EnvLong("LSMIO_BENCH_OPS", 1600));  // split across threads
const size_t kValueBytes =
    static_cast<size_t>(EnvLong("LSMIO_BENCH_VALUE_BYTES", 4 * KiB));
const int kMaxThreads = static_cast<int>(EnvLong("LSMIO_BENCH_MAX_THREADS", 16));
const bool kVerbose = std::getenv("LSMIO_BENCH_VERBOSE") != nullptr;

struct RunResult {
  int threads = 0;
  bool group_commit = false;
  int num_shards = 1;
  double puts_per_sec = 0;
  double mib_per_sec = 0;
  uint64_t group_commit_batches = 0;
  uint64_t write_stall_micros = 0;
};

RunResult RunOnce(int threads, bool group_commit, int num_shards,
                  const std::string& dir) {
  lsm::Options options;
  options.sync_writes = true;  // every write group pays one fsync
  options.disable_compaction = true;
  options.enable_group_commit = group_commit;
  // num_shards == 1 keeps the exact pre-sharding configuration; sharded
  // runs get one pool thread per shard so concurrent flushes never queue.
  options.background_threads = num_shards == 1 ? 2 : std::max(2, num_shards);
  options.num_shards = num_shards;
  options.max_write_buffer_number = 4;
  options.write_buffer_size = 8 * MiB;

  lsm::DB::Destroy(options, dir).IgnoreError();  // scratch-dir cleanup; Open surfaces real trouble
  std::unique_ptr<lsm::DB> db;
  auto s = lsm::DB::Open(options, dir, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", dir.c_str(), s.ToString().c_str());
    std::exit(1);
  }

  const int ops_per_thread = kTotalOps / threads;
  const std::string value(kValueBytes, 'w');
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> writers;
  writers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + ".k" + std::to_string(i);
        const auto put = db->Put({}, key, value);
        if (!put.ok()) {
          std::fprintf(stderr, "put failed: %s\n", put.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const lsm::DbStats stats = db->GetStats();

  RunResult r;
  r.threads = threads;
  r.group_commit = group_commit;
  r.num_shards = num_shards;
  const double total_ops = static_cast<double>(ops_per_thread) * threads;
  r.puts_per_sec = total_ops / seconds;
  r.mib_per_sec = total_ops * static_cast<double>(kValueBytes) /
                  static_cast<double>(MiB) / seconds;
  r.group_commit_batches = stats.group_commit_batches;
  r.write_stall_micros = stats.write_stall_micros;

  if (kVerbose && num_shards > 1) {
    std::vector<lsm::DbStats> per_shard;
    db->GetShardStats(&per_shard);
    for (size_t i = 0; i < per_shard.size(); ++i) {
      std::fprintf(stderr,
                   "    shard %zu: %llu batches, %llu flushes, "
                   "%llu stall us\n",
                   i,
                   static_cast<unsigned long long>(
                       per_shard[i].group_commit_batches),
                   static_cast<unsigned long long>(
                       per_shard[i].memtable_flushes),
                   static_cast<unsigned long long>(
                       per_shard[i].write_stall_micros));
    }
  }

  db.reset();
  lsm::DB::Destroy(options, dir).IgnoreError();  // scratch-dir cleanup; Open surfaces real trouble
  return r;
}

double At(const std::vector<RunResult>& results, int threads, bool group_commit,
          int num_shards) {
  for (const RunResult& r : results) {
    if (r.threads == threads && r.group_commit == group_commit &&
        r.num_shards == num_shards) {
      return r.puts_per_sec;
    }
  }
  return 0;
}

}  // namespace

int main() {
  const char* dir_env = std::getenv("LSMIO_BENCH_DIR");
  const std::string dir = (dir_env != nullptr && *dir_env != '\0')
                              ? std::string(dir_env) + "/lsmio_bench_concurrent_writers"
                              : "/tmp/lsmio_bench_concurrent_writers";
  std::vector<RunResult> results;

  for (const bool group_commit : {false, true}) {
    for (const int threads : {1, 2, 4, 8, 16}) {
      if (threads > kMaxThreads) continue;
      std::fprintf(stderr, "%-14s %2d thread(s)... ",
                   group_commit ? "group-commit" : "serialized", threads);
      std::fflush(stderr);
      results.push_back(RunOnce(threads, group_commit, /*num_shards=*/1, dir));
      std::fprintf(stderr, "%8.0f puts/s (%6.1f MiB/s)\n",
                   results.back().puts_per_sec, results.back().mib_per_sec);
    }
  }

  // Shard scaling at the widest writer count the sweep ran (>= 8 preferred:
  // below that there are not enough concurrent writers to keep 8 shards'
  // commit queues busy). num_shards == 1 re-measures the baseline in the
  // same pass so the scaling ratio is apples-to-apples.
  const int shard_threads = std::min(8, kMaxThreads);
  for (const int num_shards : {1, 2, 4, 8}) {
    std::fprintf(stderr, "%d shard(s)      %2d thread(s)... ", num_shards,
                 shard_threads);
    std::fflush(stderr);
    results.push_back(RunOnce(shard_threads, /*group_commit=*/true, num_shards,
                              dir));
    std::fprintf(stderr, "%8.0f puts/s (%6.1f MiB/s)\n",
                 results.back().puts_per_sec, results.back().mib_per_sec);
  }

  std::printf("{\n  \"bench\": \"concurrent_writers\",\n");
  std::printf("  \"sync_wal\": true,\n  \"value_bytes\": %zu,\n  \"total_ops\": %d,\n",
              kValueBytes, kTotalOps);
  std::printf("  \"host_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::printf("    {\"threads\": %d, \"group_commit\": %s, "
                "\"num_shards\": %d, "
                "\"puts_per_sec\": %.1f, \"mib_per_sec\": %.2f, "
                "\"group_commit_batches\": %llu, \"write_stall_micros\": %llu}%s\n",
                r.threads, r.group_commit ? "true" : "false", r.num_shards,
                r.puts_per_sec, r.mib_per_sec,
                static_cast<unsigned long long>(r.group_commit_batches),
                static_cast<unsigned long long>(r.write_stall_micros),
                i + 1 < results.size() ? "," : "");
  }
  // Compare at the widest concurrency actually run (CI caps the sweep).
  const int peak = std::min(4, kMaxThreads);
  const double speedup = At(results, peak, true, 1) / At(results, peak, false, 1);
  const double single_ratio = At(results, 1, true, 1) / At(results, 1, false, 1);
  const double shard_base = At(results, shard_threads, true, 1);
  const double shard_speedup_4 =
      shard_base > 0 ? At(results, shard_threads, true, 4) / shard_base : 0;
  const double shard_speedup_8 =
      shard_base > 0 ? At(results, shard_threads, true, 8) / shard_base : 0;
  std::printf("  ],\n  \"speedup_threads\": %d,\n  \"speedup\": %.2f,\n", peak,
              speedup);
  std::printf("  \"single_writer_ratio\": %.2f,\n", single_ratio);
  std::printf("  \"shard_scaling\": {\"threads\": %d, "
              "\"speedup_4_shards\": %.2f, \"speedup_8_shards\": %.2f}\n}\n",
              shard_threads, shard_speedup_4, shard_speedup_8);

  std::fprintf(stderr,
               "\ngroup commit at %d threads: %.2fx the serialized path "
               "(target >= 2x at 4); single-writer ratio %.2f (target > 0.95)\n",
               peak, speedup, single_ratio);
  std::fprintf(stderr,
               "shard scaling at %d threads: 4 shards %.2fx, 8 shards %.2fx "
               "the single-shard path (target >= 1.5x at 4 shards)\n",
               shard_threads, shard_speedup_4, shard_speedup_8);
  return 0;
}
