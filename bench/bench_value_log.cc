// Value-log separation A/B: the same overwrite-heavy checkpoint workload
// (large values, leveled compaction) run with the value log off
// (threshold 0, the seed configuration) and on (values separated into
// blob segments, SSTs hold pointers). With separation the compactions
// move ~30-byte pointers instead of megabyte values, so compaction bytes
// written should collapse (target >= 2x lower) and end-to-end throughput
// should rise. Emits a JSON document on stdout; progress goes to stderr.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/units.h"
#include "lsm/db.h"
#include "vfs/posix_vfs.h"

namespace {

using namespace lsmio;

// Defaults measure a real workload; CI overrides them via the environment
// (LSMIO_BENCH_OPS / LSMIO_BENCH_VALUE_BYTES) for a seconds-long smoke run.
long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr, "ignoring %s=%s (want a positive integer)\n", name, v);
    return fallback;
  }
  return parsed;
}

const int kTotalOps = static_cast<int>(EnvLong("LSMIO_BENCH_OPS", 256));
const size_t kValueBytes =
    static_cast<size_t>(EnvLong("LSMIO_BENCH_VALUE_BYTES", 1 * MiB));
const int kKeySpace = 64;  // overwrites: each key rewritten kTotalOps/64 times

struct RunResult {
  uint64_t value_log_threshold = 0;
  double seconds = 0;
  double mib_per_sec = 0;
  double write_amp = 0;  // device bytes per user byte
  uint64_t compaction_bytes_read = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t bytes_flushed = 0;
  uint64_t wal_bytes = 0;
  uint64_t value_log_bytes_written = 0;
  uint64_t value_log_gc_rewritten_bytes = 0;
  uint64_t value_log_segments_deleted = 0;
  uint64_t compactions = 0;
};

RunResult RunOnce(uint64_t threshold, const std::string& dir) {
  lsm::Options options;
  options.value_log_threshold = threshold;
  // Leveled compaction sized so the workload churns through several
  // compaction rounds: ~buffer-sized L0 files, a small L1, overwrites
  // forcing every level to be rewritten repeatedly.
  options.write_buffer_size = 8 * MiB;
  options.max_write_buffer_number = 4;
  options.l0_compaction_trigger = 2;
  options.max_bytes_for_level_base = 16 * MiB;
  options.target_file_size = 4 * MiB;
  options.background_threads = 2;

  lsm::DB::Destroy(options, dir).IgnoreError();  // scratch-dir cleanup; Open surfaces real trouble
  std::unique_ptr<lsm::DB> db;
  auto s = lsm::DB::Open(options, dir, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", dir.c_str(),
                 s.ToString().c_str());
    std::exit(1);
  }

  std::string value(kValueBytes, 'v');
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kTotalOps; ++i) {
    // Vary the payload so no two versions of a key are identical.
    value[static_cast<size_t>(i) % kValueBytes] = static_cast<char>('a' + i % 26);
    const std::string key = "ckpt" + std::to_string(i % kKeySpace);
    const auto put = db->Put({}, key, value);
    if (!put.ok()) {
      std::fprintf(stderr, "put failed: %s\n", put.ToString().c_str());
      std::exit(1);
    }
  }
  // Settle: flush the tail and drain the compaction debt inside the timed
  // region, so deferred compaction work cannot flatter either config.
  if (!db->FlushMemTable(true).ok() || !db->CompactRange().ok()) {
    std::fprintf(stderr, "settle failed\n");
    std::exit(1);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const lsm::DbStats stats = db->GetStats();
  const double user_bytes = static_cast<double>(kTotalOps) *
                            static_cast<double>(kValueBytes);

  RunResult r;
  r.value_log_threshold = threshold;
  r.seconds = seconds;
  r.mib_per_sec = user_bytes / static_cast<double>(MiB) / seconds;
  r.compaction_bytes_read = stats.compaction_bytes_read;
  r.compaction_bytes_written = stats.compaction_bytes_written;
  r.bytes_flushed = stats.bytes_flushed;
  r.wal_bytes = stats.wal_bytes;
  r.value_log_bytes_written = stats.value_log_bytes_written;
  r.value_log_gc_rewritten_bytes = stats.value_log_gc_rewritten_bytes;
  r.value_log_segments_deleted = stats.value_log_segments_deleted;
  r.compactions = stats.compactions;
  r.write_amp = (static_cast<double>(stats.wal_bytes) +
                 static_cast<double>(stats.bytes_flushed) +
                 static_cast<double>(stats.compaction_bytes_written) +
                 static_cast<double>(stats.value_log_bytes_written) +
                 static_cast<double>(stats.value_log_gc_rewritten_bytes)) /
                user_bytes;

  db.reset();
  lsm::DB::Destroy(options, dir).IgnoreError();  // scratch-dir cleanup; Open surfaces real trouble
  return r;
}

void PrintResult(const RunResult& r, const char* trailer) {
  std::printf(
      "    {\"value_log_threshold\": %llu, \"seconds\": %.2f, "
      "\"mib_per_sec\": %.2f, \"write_amp\": %.2f,\n"
      "     \"compaction_bytes_read\": %llu, \"compaction_bytes_written\": %llu, "
      "\"bytes_flushed\": %llu, \"wal_bytes\": %llu,\n"
      "     \"value_log_bytes_written\": %llu, "
      "\"value_log_gc_rewritten_bytes\": %llu, "
      "\"value_log_segments_deleted\": %llu, \"compactions\": %llu}%s\n",
      static_cast<unsigned long long>(r.value_log_threshold), r.seconds,
      r.mib_per_sec, r.write_amp,
      static_cast<unsigned long long>(r.compaction_bytes_read),
      static_cast<unsigned long long>(r.compaction_bytes_written),
      static_cast<unsigned long long>(r.bytes_flushed),
      static_cast<unsigned long long>(r.wal_bytes),
      static_cast<unsigned long long>(r.value_log_bytes_written),
      static_cast<unsigned long long>(r.value_log_gc_rewritten_bytes),
      static_cast<unsigned long long>(r.value_log_segments_deleted),
      static_cast<unsigned long long>(r.compactions), trailer);
}

}  // namespace

int main() {
  const char* dir_env = std::getenv("LSMIO_BENCH_DIR");
  const std::string dir = (dir_env != nullptr && *dir_env != '\0')
                              ? std::string(dir_env) + "/lsmio_bench_value_log"
                              : "/tmp/lsmio_bench_value_log";

  std::fprintf(stderr, "baseline  (threshold=0)...   ");
  std::fflush(stderr);
  const RunResult base = RunOnce(/*threshold=*/0, dir);
  std::fprintf(stderr, "%7.1f MiB/s, %6.1f MiB compacted, write amp %.2f\n",
               base.mib_per_sec,
               static_cast<double>(base.compaction_bytes_written) / MiB,
               base.write_amp);

  std::fprintf(stderr, "value log (threshold=256K)...");
  std::fflush(stderr);
  const RunResult vlog = RunOnce(/*threshold=*/256 * KiB, dir);
  std::fprintf(stderr, "%7.1f MiB/s, %6.1f MiB compacted, write amp %.2f\n",
               vlog.mib_per_sec,
               static_cast<double>(vlog.compaction_bytes_written) / MiB,
               vlog.write_amp);

  const double compaction_reduction =
      vlog.compaction_bytes_written > 0
          ? static_cast<double>(base.compaction_bytes_written) /
                static_cast<double>(vlog.compaction_bytes_written)
          : 0;
  const double throughput_ratio =
      base.mib_per_sec > 0 ? vlog.mib_per_sec / base.mib_per_sec : 0;

  std::printf("{\n  \"bench\": \"value_log\",\n");
  std::printf("  \"total_ops\": %d,\n  \"value_bytes\": %zu,\n", kTotalOps,
              kValueBytes);
  std::printf("  \"key_space\": %d,\n  \"results\": [\n", kKeySpace);
  PrintResult(base, ",");
  PrintResult(vlog, "");
  std::printf("  ],\n");
  std::printf("  \"compaction_bytes_reduction\": %.2f,\n", compaction_reduction);
  std::printf("  \"throughput_ratio\": %.2f\n}\n", throughput_ratio);

  std::fprintf(stderr,
               "\nvalue log vs baseline: %.1fx fewer compaction bytes written "
               "(target >= 2x), %.2fx throughput (target > 1x)\n",
               compaction_reduction, throughput_ratio);
  return 0;
}
