// Figure 6: HDF5 and ADIOS2 vs LSMIO (and the IOR baseline), stripe count
// 4, block sizes 64 KiB and 1 MiB.
#include "figure_common.h"

int main() {
  using namespace lsmio;
  using namespace lsmio::bench;

  std::vector<Series> series;
  for (const uint64_t block : {64 * KiB, 1 * MiB}) {
    const std::string suffix = block == 64 * KiB ? "64K" : "1M";
    const pfs::SimOptions sim = MakeSim(4, block);
    series.push_back(RunSeries("IOR-" + suffix, iorsim::Api::kPosix, block, sim));
    series.push_back(RunSeries("HDF5-" + suffix, iorsim::Api::kH5l, block, sim));
    series.push_back(RunSeries("ADIOS2-" + suffix, iorsim::Api::kA2, block, sim));
    series.push_back(RunSeries("LSMIO-" + suffix, iorsim::Api::kLsmio, block, sim));
  }
  PrintTable("Figure 6", "HDF5 and ADIOS2 vs LSMIO (stripe count 4, 64K and 1M)",
             series);

  const Series& ior64 = series[0];
  const Series& hdf64 = series[1];
  const Series& a264 = series[2];
  const Series& lsm64 = series[3];
  const Series& hdf1m = series[5];
  const Series& a21m = series[6];

  std::printf("\nHeadline comparisons (paper section 4.2):\n");
  PrintClaim("IOR over HDF5 (max ratio, 64K)", MaxRatio(ior64, hdf64),
             "2.6x to 48.1x");
  PrintClaim("HDF5 1M over 64K past stripe count (max ratio)",
             MaxRatio(hdf1m, hdf64), "up to 9.9x");
  PrintClaim("ADIOS2 over IOR at 48 nodes (64K)", PeakRatio(a264, ior64),
             "up to 10.7x");
  PrintClaim("ADIOS2 over HDF5 at 48 nodes (64K)", PeakRatio(a264, hdf64),
             "up to 35.3x");
  PrintClaim("LSMIO over HDF5 at 48 nodes (64K)", PeakRatio(lsm64, hdf64),
             "more than 76.7x");
  PrintClaim("LSMIO over ADIOS2 at 48 nodes (64K)", PeakRatio(lsm64, a264),
             "more than 2.4x");
  (void)a21m;
  return 0;
}
