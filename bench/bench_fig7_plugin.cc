// Figure 7: ADIOS2 vs the LSMIO plugin for ADIOS2 vs LSMIO baseline,
// stripe count 4, block sizes 64 KiB and 1 MiB. The plugin lands between
// ADIOS2 and the LSMIO baseline (~1.5x steps at 48 nodes).
#include "figure_common.h"

int main() {
  using namespace lsmio;
  using namespace lsmio::bench;

  std::vector<Series> series;
  for (const uint64_t block : {64 * KiB, 1 * MiB}) {
    const std::string suffix = block == 64 * KiB ? "64K" : "1M";
    const pfs::SimOptions sim = MakeSim(4, block);
    series.push_back(RunSeries("ADIOS2-" + suffix, iorsim::Api::kA2, block, sim));
    series.push_back(
        RunSeries("Plugin-" + suffix, iorsim::Api::kA2Lsmio, block, sim));
    series.push_back(RunSeries("LSMIO-" + suffix, iorsim::Api::kLsmio, block, sim));
  }
  PrintTable("Figure 7",
             "ADIOS2 vs LSMIO plugin vs LSMIO baseline (stripe 4, 64K and 1M)",
             series);

  std::printf("\nHeadline comparisons (paper section 4.3):\n");
  PrintClaim("Plugin over ADIOS2 at 48 nodes (64K)", PeakRatio(series[1], series[0]),
             "up to 1.5x");
  PrintClaim("LSMIO over plugin at 48 nodes (64K)", PeakRatio(series[2], series[1]),
             "about 1.5x");
  PrintClaim("Plugin over ADIOS2 at 48 nodes (1M)", PeakRatio(series[4], series[3]),
             "up to 1.5x");
  PrintClaim("LSMIO over plugin at 48 nodes (1M)", PeakRatio(series[5], series[4]),
             "about 1.5x");
  return 0;
}
