// Ablation study of the paper's §3.1.1 store customizations: each knob the
// paper flips on its LSM backend (WAL, compression, compaction, sync
// writes) measured one-at-a-time against the paper configuration, plus
// buffer-size and block-size sweeps. Quantifies why the checkpoint
// configuration looks the way it does.
#include "figure_common.h"

namespace {

using namespace lsmio;
using namespace lsmio::bench;

double RunKnobs(const iorsim::Workload::EngineKnobs& knobs, uint64_t buffer_chunk,
                int nodes = 16) {
  iorsim::Workload workload = MakeWorkload(iorsim::Api::kLsmio, nodes, 64 * KiB);
  workload.lsmio_knobs = knobs;
  workload.buffer_chunk = buffer_chunk;
  const pfs::SimOptions sim = MakeSim(4, 64 * KiB);
  return RunWorkload(workload, sim).bandwidth;
}

void Row(const char* name, double bw, double baseline) {
  std::printf("  %-40s %10.1f MiB/s   %5.2fx of paper config\n", name,
              bw / static_cast<double>(MiB), bw / baseline);
}

}  // namespace

int main() {
  iorsim::Workload::EngineKnobs paper;  // defaults = paper configuration
  const double baseline = RunKnobs(paper, 32 * MiB);

  std::printf("Ablation: LSMIO store knobs (16 nodes, 64K transfers, stripe 4)\n\n");
  Row("paper config (no WAL/compress/compact)", baseline, baseline);

  {
    auto knobs = paper;
    knobs.disable_wal = false;
    Row("+ write-ahead log", RunKnobs(knobs, 32 * MiB), baseline);
  }
  {
    auto knobs = paper;
    knobs.disable_compression = false;
    Row("+ compression (lz-lite)", RunKnobs(knobs, 32 * MiB), baseline);
  }
  {
    auto knobs = paper;
    knobs.disable_compaction = false;
    Row("+ background compaction", RunKnobs(knobs, 32 * MiB), baseline);
  }
  {
    auto knobs = paper;
    knobs.sync_writes = true;
    Row("+ synchronous writes", RunKnobs(knobs, 32 * MiB), baseline);
  }
  {
    auto knobs = paper;
    knobs.disable_wal = false;
    knobs.sync_writes = true;
    Row("+ WAL + sync (full durability)", RunKnobs(knobs, 32 * MiB), baseline);
  }

  std::printf("\nWrite buffer size sweep (paper uses 32 MB):\n");
  for (const uint64_t buffer : {4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB, 64 * MiB}) {
    char name[64];
    std::snprintf(name, sizeof name, "write_buffer_size = %s",
                  FormatBytes(buffer).c_str());
    Row(name, RunKnobs(paper, buffer), baseline);
  }

  std::printf("\nSSTable block size sweep (default 4 KiB):\n");
  for (const uint64_t block : {4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB}) {
    auto knobs = paper;
    knobs.block_size = block;
    char name[64];
    std::snprintf(name, sizeof name, "block_size = %s", FormatBytes(block).c_str());
    Row(name, RunKnobs(knobs, 32 * MiB), baseline);
  }
  return 0;
}
