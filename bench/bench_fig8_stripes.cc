// Figure 8: the Figure-7 comparison repeated at Lustre stripe counts 4 and
// 16, block size 64 KiB — stripe count shifts the IOR-family knee but
// barely moves the LSMIO family.
#include "figure_common.h"

int main() {
  using namespace lsmio;
  using namespace lsmio::bench;

  constexpr uint64_t kBlock = 64 * KiB;
  std::vector<Series> series;
  for (const int stripe_count : {4, 16}) {
    const std::string suffix = "s" + std::to_string(stripe_count);
    const pfs::SimOptions sim = MakeSim(stripe_count, kBlock);
    series.push_back(RunSeries("ADIOS2-" + suffix, iorsim::Api::kA2, kBlock, sim));
    series.push_back(
        RunSeries("Plugin-" + suffix, iorsim::Api::kA2Lsmio, kBlock, sim));
    series.push_back(RunSeries("LSMIO-" + suffix, iorsim::Api::kLsmio, kBlock, sim));
  }
  PrintTable("Figure 8",
             "ADIOS2 vs LSMIO plugin vs LSMIO, stripe counts 4 and 16 (64K)",
             series);

  std::printf("\nHeadline comparisons (paper section 4.3, Figure 8):\n");
  PrintClaim("LSMIO over ADIOS2 at 48 nodes (stripe 4)",
             PeakRatio(series[2], series[0]), "more than 2.4x");
  PrintClaim("LSMIO over ADIOS2 at 48 nodes (stripe 16)",
             PeakRatio(series[5], series[3]), "more than 2.4x");
  PrintClaim("LSMIO stripe-16 over stripe-4 at 48 nodes (stripe-insensitive)",
             PeakRatio(series[5], series[2]), "~1x (similar results)");
  return 0;
}
