// Figure 5: IOR baseline vs LSMIO, Lustre stripe count 4, block sizes
// 64 KiB and 1 MiB, 1..48 nodes. Reproduces the paper's shape: IOR scales
// while nodes <= stripe count then collapses; LSMIO starts below IOR but
// keeps scaling and wins decisively at 48 nodes.
#include "figure_common.h"

int main() {
  using namespace lsmio;
  using namespace lsmio::bench;

  std::vector<Series> series;
  for (const uint64_t block : {64 * KiB, 1 * MiB}) {
    const std::string suffix = block == 64 * KiB ? "64K" : "1M";
    const pfs::SimOptions sim = MakeSim(/*stripe_count=*/4, /*stripe_size=*/block);
    series.push_back(RunSeries("IOR-" + suffix, iorsim::Api::kPosix, block, sim));
    series.push_back(RunSeries("LSMIO-" + suffix, iorsim::Api::kLsmio, block, sim));
  }
  PrintTable("Figure 5", "IOR baseline vs LSMIO (stripe count 4, sizes 64K and 1M)",
             series);

  const Series& ior64 = series[0];
  const Series& lsmio64 = series[1];
  const Series& ior1m = series[2];
  const Series& lsmio1m = series[3];

  // IOR collapse past the stripe count: peak (<= 4 nodes) over the 48-node
  // floor.
  double ior_peak = 0;
  for (const int nodes : {1, 2, 4}) {
    ior_peak = std::max(ior_peak, ior1m.bw_by_nodes.at(nodes));
  }
  std::printf("\nHeadline comparisons (paper section 4.1):\n");
  PrintClaim("IOR drop past stripe count (peak/48-node, 1M)",
             ior_peak / ior1m.bw_by_nodes.at(48), "up to 6.2x");
  PrintClaim("1M over 64K for IOR past stripe count (max ratio)",
             MaxRatio(ior1m, ior64), "up to 4.9x");
  PrintClaim("LSMIO over IOR at 48 nodes (64K)", PeakRatio(lsmio64, ior64),
             "up to 23.1x");
  PrintClaim("LSMIO over IOR at 48 nodes (1M)", PeakRatio(lsmio1m, ior1m),
             "up to 23.1x");
  PrintClaim("IOR over LSMIO at 1 node (1M)",
             ior1m.bw_by_nodes.at(1) / lsmio1m.bw_by_nodes.at(1),
             ">1x (IOR wins at low concurrency)");
  return 0;
}
